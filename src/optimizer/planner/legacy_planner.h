#ifndef MPPDB_OPTIMIZER_PLANNER_LEGACY_PLANNER_H_
#define MPPDB_OPTIMIZER_PLANNER_LEGACY_PLANNER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "optimizer/logical.h"
#include "optimizer/stats.h"

namespace mppdb {

/// The legacy "Planner" baseline (paper §4): a PostgreSQL-inheritance-style
/// optimizer whose plans reference partitions explicitly.
///
///  * Static partition elimination: selection predicates are evaluated
///    against partition constraints at planning time; the plan is an Append
///    listing one TableScan per surviving leaf — plan size grows linearly
///    with the number of scanned partitions (Fig. 18(a)).
///  * Dynamic (join-induced) elimination: supported in the rudimentary
///    parameter style — a PartitionSelector computes qualifying OIDs at run
///    time into a parameter, but the plan still lists every surviving leaf
///    as a CheckedPartScan, so plan size stays linear in the partition count
///    (Fig. 18(b)).
///  * DML with joins between partitioned tables enumerates per-partition
///    join combinations, growing quadratically (Fig. 18(c)).
class LegacyPlanner {
 public:
  struct Options {
    bool enable_static_elimination = true;
    bool enable_dynamic_elimination = true;
  };

  LegacyPlanner(const Catalog* catalog, const StorageEngine* storage)
      : catalog_(catalog), estimator_(storage) {}

  LegacyPlanner(const Catalog* catalog, const StorageEngine* storage, Options options)
      : catalog_(catalog), estimator_(storage), options_(options) {}

  /// Produces an executable physical plan (Gather-rooted for SELECT).
  Result<PhysPtr> Plan(const BoundStatement& stmt);

 private:
  struct Planned {
    PhysPtr plan;
    /// True if rows are spread across segments (false: singleton/values).
    bool distributed = true;
    /// Set when the subtree is (possibly a Filter over) an Append of leaf
    /// scans of one partitioned table — the planner's hook for parameter-
    /// based dynamic elimination.
    const TableDescriptor* partitioned_table = nullptr;
    std::vector<ColRefId> partition_key_ids;
    /// Natural hash-distribution columns (empty if unknown).
    std::vector<ColRefId> hash_columns;
  };

  Result<Planned> PlanNode(const LogicalPtr& node);
  Result<Planned> PlanGet(const LogicalGet& get, const ExprPtr& pred);
  Result<Planned> PlanJoin(const LogicalJoin& join);
  Result<PhysPtr> PlanDml(const BoundStatement& stmt);
  Result<PhysPtr> PlanPairwiseDmlJoin(const BoundStatement& stmt);

  int NextScanId() { return next_scan_id_++; }

  const Catalog* catalog_;
  CardinalityEstimator estimator_;
  Options options_;
  int next_scan_id_ = 1;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_PLANNER_LEGACY_PLANNER_H_
