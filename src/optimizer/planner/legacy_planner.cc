#include "optimizer/planner/legacy_planner.h"

#include <unordered_set>

#include "common/macros.h"
#include "expr/constraint_derivation.h"

namespace mppdb {

namespace {

// Replaces the leaf TableScans of (a Filter over) an Append with
// CheckedPartScans consulting the runtime parameter `scan_id` — the legacy
// planner's dynamic-elimination plan shape.
PhysPtr RewriteAppendToChecked(const PhysPtr& node, Oid table_oid, int scan_id) {
  if (node->kind() == PhysNodeKind::kFilter) {
    const auto& filter = static_cast<const FilterNode&>(*node);
    return std::make_shared<FilterNode>(
        filter.predicate(), RewriteAppendToChecked(filter.child(0), table_oid, scan_id));
  }
  if (node->kind() == PhysNodeKind::kAppend) {
    std::vector<PhysPtr> children;
    for (const auto& child : node->children()) {
      children.push_back(RewriteAppendToChecked(child, table_oid, scan_id));
    }
    return std::make_shared<AppendNode>(std::move(children));
  }
  if (node->kind() == PhysNodeKind::kTableScan) {
    const auto& scan = static_cast<const TableScanNode&>(*node);
    if (scan.table_oid() == table_oid && scan.unit_oid() != table_oid &&
        scan.rowid_ids().empty()) {
      return std::make_shared<CheckedPartScanNode>(table_oid, scan.unit_oid(), scan_id,
                                                   scan.column_ids());
    }
  }
  return node;
}

PhysPtr Gather(PhysPtr plan) {
  return std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      std::move(plan));
}

PhysPtr Broadcast(PhysPtr plan) {
  return std::make_shared<MotionNode>(MotionKind::kBroadcast, std::vector<ColRefId>{},
                                      std::move(plan));
}

}  // namespace

Result<LegacyPlanner::Planned> LegacyPlanner::PlanGet(const LogicalGet& get,
                                                      const ExprPtr& pred) {
  Planned out;
  const TableDescriptor* table = get.table();
  if (table->distribution == TableDistribution::kHashed) {
    out.hash_columns = get.DistributionKeyIds();
  }
  out.distributed = table->distribution != TableDistribution::kReplicated;

  if (!table->IsPartitioned()) {
    out.plan = std::make_shared<TableScanNode>(table->oid, table->oid,
                                               get.column_ids(), get.rowid_ids());
    return out;
  }

  // Static partition elimination: evaluate the predicate against partition
  // constraints at planning time.
  std::vector<ConstraintSet> constraints;
  if (options_.enable_static_elimination && pred != nullptr) {
    for (ColRefId key : get.PartitionKeyIds()) {
      constraints.push_back(DeriveConstraint(pred, key));
    }
  }
  std::vector<Oid> leaves = table->partition_scheme->SelectPartitions(constraints);

  if (leaves.empty()) {
    out.plan = std::make_shared<ValuesNode>(std::vector<Row>{}, get.OutputIds());
    out.distributed = false;
    return out;
  }
  std::vector<PhysPtr> scans;
  scans.reserve(leaves.size());
  for (Oid leaf : leaves) {
    scans.push_back(std::make_shared<TableScanNode>(table->oid, leaf, get.column_ids(),
                                                    get.rowid_ids()));
  }
  out.plan = std::make_shared<AppendNode>(std::move(scans));
  if (get.rowid_ids().empty()) {
    out.partitioned_table = table;
    out.partition_key_ids = get.PartitionKeyIds();
  }
  return out;
}

Result<LegacyPlanner::Planned> LegacyPlanner::PlanJoin(const LogicalJoin& join) {
  MPPDB_ASSIGN_OR_RETURN(Planned left, PlanNode(join.child(0)));
  MPPDB_ASSIGN_OR_RETURN(Planned right, PlanNode(join.child(1)));

  std::vector<ColRefId> left_ids = join.child(0)->OutputIds();
  std::vector<ColRefId> right_ids = join.child(1)->OutputIds();
  EquiJoinKeys keys = ExtractEquiJoinKeys(join.predicate(), left_ids, right_ids);

  // Build/probe selection. Semi joins preserve the left side, which must be
  // the probe (our executor's semi join emits probe rows). For inner joins
  // the smaller side builds.
  Planned build, probe;
  std::vector<ColRefId> build_keys, probe_keys;
  if (join.join_type() == JoinType::kSemi ||
      estimator_.EstimateRows(join.child(1)) <= estimator_.EstimateRows(join.child(0))) {
    build = std::move(right);
    probe = std::move(left);
    build_keys = keys.right;
    probe_keys = keys.left;
  } else {
    build = std::move(left);
    probe = std::move(right);
    build_keys = keys.left;
    probe_keys = keys.right;
  }

  // The baseline always broadcasts the build side (correct, if not optimal).
  PhysPtr build_plan = Broadcast(build.plan);

  // Rudimentary parameter-based dynamic partition elimination (paper §4.4.2):
  // the plan still lists every partition as a CheckedPartScan. True to the
  // legacy planner's limitations (paper §5: "a handful of simple examples of
  // single-level equality joins"), it only fires for plain inner joins —
  // semi joins produced by IN (SELECT ...) rewrites are not covered.
  if (options_.enable_dynamic_elimination && join.join_type() == JoinType::kInner &&
      probe.partitioned_table != nullptr) {
    std::vector<ExprPtr> level_preds(probe.partition_key_ids.size(), nullptr);
    bool any = false;
    for (size_t level = 0; level < probe.partition_key_ids.size(); ++level) {
      for (size_t k = 0; k < probe_keys.size(); ++k) {
        if (probe_keys[k] == probe.partition_key_ids[level]) {
          level_preds[level] = MakeComparison(
              CompareOp::kEq,
              MakeColumnRef(probe.partition_key_ids[level], "pk", TypeId::kInt64),
              MakeColumnRef(build_keys[k], "bk", TypeId::kInt64));
          any = true;
          break;
        }
      }
    }
    if (any) {
      int scan_id = NextScanId();
      probe.plan = RewriteAppendToChecked(probe.plan, probe.partitioned_table->oid,
                                          scan_id);
      build_plan = std::make_shared<PartitionSelectorNode>(
          probe.partitioned_table->oid, scan_id, probe.partition_key_ids,
          std::move(level_preds), build_plan);
    }
  }

  Planned out;
  if (build_keys.empty()) {
    out.plan = std::make_shared<NestedLoopJoinNode>(join.join_type(), join.predicate(),
                                                    build_plan, probe.plan);
  } else {
    out.plan = std::make_shared<HashJoinNode>(join.join_type(), build_keys, probe_keys,
                                              keys.residual, build_plan, probe.plan);
  }
  out.distributed = probe.distributed;
  out.hash_columns = probe.hash_columns;
  return out;
}

Result<LegacyPlanner::Planned> LegacyPlanner::PlanNode(const LogicalPtr& node) {
  switch (node->kind()) {
    case LogicalKind::kGet:
      return PlanGet(static_cast<const LogicalGet&>(*node), nullptr);
    case LogicalKind::kSelect: {
      const auto& select = static_cast<const LogicalSelect&>(*node);
      if (select.child(0)->kind() == LogicalKind::kGet) {
        MPPDB_ASSIGN_OR_RETURN(
            Planned scan, PlanGet(static_cast<const LogicalGet&>(*select.child(0)),
                                  select.predicate()));
        scan.plan = std::make_shared<FilterNode>(select.predicate(), scan.plan);
        return scan;
      }
      MPPDB_ASSIGN_OR_RETURN(Planned child, PlanNode(select.child(0)));
      child.plan = std::make_shared<FilterNode>(select.predicate(), child.plan);
      return child;
    }
    case LogicalKind::kJoin:
      return PlanJoin(static_cast<const LogicalJoin&>(*node));
    case LogicalKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(*node);
      MPPDB_ASSIGN_OR_RETURN(Planned child, PlanNode(project.child(0)));
      child.plan = std::make_shared<ProjectNode>(project.items(), child.plan);
      child.partitioned_table = nullptr;
      child.hash_columns.clear();
      return child;
    }
    case LogicalKind::kAgg: {
      const auto& agg = static_cast<const LogicalAgg&>(*node);
      MPPDB_ASSIGN_OR_RETURN(Planned child, PlanNode(agg.child(0)));
      PhysPtr plan = child.distributed ? Gather(child.plan) : child.plan;
      Planned out;
      out.plan = std::make_shared<HashAggNode>(agg.group_by(), agg.aggs(), plan);
      out.distributed = false;
      return out;
    }
    case LogicalKind::kSort: {
      const auto& sort = static_cast<const LogicalSort&>(*node);
      MPPDB_ASSIGN_OR_RETURN(Planned child, PlanNode(sort.child(0)));
      PhysPtr plan = child.distributed ? Gather(child.plan) : child.plan;
      Planned out;
      out.plan = std::make_shared<SortNode>(sort.keys(), plan);
      out.distributed = false;
      return out;
    }
    case LogicalKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(*node);
      MPPDB_ASSIGN_OR_RETURN(Planned child, PlanNode(limit.child(0)));
      PhysPtr plan = child.distributed ? Gather(child.plan) : child.plan;
      Planned out;
      out.plan = std::make_shared<LimitNode>(limit.limit(), plan);
      out.distributed = false;
      return out;
    }
    case LogicalKind::kValues: {
      const auto& values = static_cast<const LogicalValues&>(*node);
      Planned out;
      out.plan = std::make_shared<ValuesNode>(values.rows(), values.OutputIds());
      out.distributed = false;
      return out;
    }
  }
  return Status::PlanError("unsupported logical node in legacy planner");
}

Result<PhysPtr> LegacyPlanner::PlanDml(const BoundStatement& stmt) {
  if (stmt.kind == BoundStatement::Kind::kUpdate ||
      stmt.kind == BoundStatement::Kind::kDelete) {
    Result<PhysPtr> pairwise = PlanPairwiseDmlJoin(stmt);
    if (pairwise.ok()) return pairwise;
  }
  MPPDB_ASSIGN_OR_RETURN(Planned source, PlanNode(stmt.root));
  PhysPtr plan = source.distributed ? Gather(source.plan) : source.plan;
  switch (stmt.kind) {
    case BoundStatement::Kind::kInsert:
      return PhysPtr(std::make_shared<InsertNode>(stmt.target_table->oid,
                                                  stmt.count_output_id, plan));
    case BoundStatement::Kind::kUpdate:
      return PhysPtr(std::make_shared<UpdateNode>(
          stmt.target_table->oid, stmt.target_column_ids, stmt.target_rowid_ids,
          stmt.set_items, stmt.count_output_id, plan));
    case BoundStatement::Kind::kDelete:
      return PhysPtr(std::make_shared<DeleteNode>(stmt.target_table->oid,
                                                  stmt.target_rowid_ids,
                                                  stmt.count_output_id, plan));
    default:
      return Status::PlanError("not a DML statement");
  }
}

namespace {

// Pattern helper: unwraps Select(Get) / Get, returning the Get and the local
// predicate.
const LogicalGet* UnwrapGet(const LogicalPtr& node, ExprPtr* pred) {
  if (node->kind() == LogicalKind::kGet) {
    *pred = nullptr;
    return &static_cast<const LogicalGet&>(*node);
  }
  if (node->kind() == LogicalKind::kSelect &&
      node->child(0)->kind() == LogicalKind::kGet) {
    *pred = static_cast<const LogicalSelect&>(*node).predicate();
    return &static_cast<const LogicalGet&>(*node->child(0));
  }
  return nullptr;
}

}  // namespace

Result<PhysPtr> LegacyPlanner::PlanPairwiseDmlJoin(const BoundStatement& stmt) {
  // Match: [Select(pred)] Join(jpred, side, side) where both sides are
  // (filtered) Gets of partitioned tables. The legacy planner expands the
  // join into per-partition-pair joins (paper §4.4.3).
  LogicalPtr node = stmt.root;
  ExprPtr top_pred = nullptr;
  if (node->kind() == LogicalKind::kSelect) {
    top_pred = static_cast<const LogicalSelect&>(*node).predicate();
    node = node->child(0);
  }
  if (node->kind() != LogicalKind::kJoin) {
    return Status::PlanError("not a pairwise DML join pattern");
  }
  const auto& join = static_cast<const LogicalJoin&>(*node);
  if (join.join_type() != JoinType::kInner) {
    return Status::PlanError("not a pairwise DML join pattern");
  }
  ExprPtr left_pred, right_pred;
  const LogicalGet* left_get = UnwrapGet(join.child(0), &left_pred);
  const LogicalGet* right_get = UnwrapGet(join.child(1), &right_pred);
  if (left_get == nullptr || right_get == nullptr ||
      !left_get->table()->IsPartitioned() || !right_get->table()->IsPartitioned()) {
    return Status::PlanError("not a pairwise DML join pattern");
  }

  ExprPtr combined = Conj({top_pred, join.predicate()});
  EquiJoinKeys keys = ExtractEquiJoinKeys(combined, join.child(0)->OutputIds(),
                                  join.child(1)->OutputIds());
  ExprPtr filter_pred = keys.residual;

  // Static pruning per side (the planner does apply constraint exclusion).
  auto select_leaves = [&](const LogicalGet& get, const ExprPtr& pred) {
    std::vector<ConstraintSet> constraints;
    if (options_.enable_static_elimination && pred != nullptr) {
      for (ColRefId key : get.PartitionKeyIds()) {
        constraints.push_back(DeriveConstraint(pred, key));
      }
    }
    return get.table()->partition_scheme->SelectPartitions(constraints);
  };
  std::vector<Oid> left_leaves = select_leaves(*left_get, left_pred);
  std::vector<Oid> right_leaves = select_leaves(*right_get, right_pred);

  // One join per partition pair: build = right leaf (broadcast), probe =
  // left leaf.
  std::vector<PhysPtr> pair_joins;
  pair_joins.reserve(left_leaves.size() * right_leaves.size());
  for (Oid left_leaf : left_leaves) {
    for (Oid right_leaf : right_leaves) {
      PhysPtr left_scan = std::make_shared<TableScanNode>(
          left_get->table()->oid, left_leaf, left_get->column_ids(),
          left_get->rowid_ids());
      if (left_pred != nullptr) {
        left_scan = std::make_shared<FilterNode>(left_pred, left_scan);
      }
      PhysPtr right_scan = std::make_shared<TableScanNode>(
          right_get->table()->oid, right_leaf, right_get->column_ids(),
          right_get->rowid_ids());
      if (right_pred != nullptr) {
        right_scan = std::make_shared<FilterNode>(right_pred, right_scan);
      }
      PhysPtr pair;
      if (!keys.left.empty()) {
        pair = std::make_shared<HashJoinNode>(JoinType::kInner, keys.right, keys.left,
                                              filter_pred, Broadcast(right_scan),
                                              left_scan);
      } else {
        pair = std::make_shared<NestedLoopJoinNode>(JoinType::kInner, combined,
                                                    Broadcast(right_scan), left_scan);
      }
      pair_joins.push_back(std::move(pair));
    }
  }
  PhysPtr plan;
  if (pair_joins.empty()) {
    std::vector<ColRefId> out_ids = join.OutputIds();
    plan = std::make_shared<ValuesNode>(std::vector<Row>{}, std::move(out_ids));
  } else {
    plan = std::make_shared<AppendNode>(std::move(pair_joins));
  }
  plan = Gather(std::move(plan));
  if (stmt.kind == BoundStatement::Kind::kUpdate) {
    return PhysPtr(std::make_shared<UpdateNode>(
        stmt.target_table->oid, stmt.target_column_ids, stmt.target_rowid_ids,
        stmt.set_items, stmt.count_output_id, plan));
  }
  return PhysPtr(std::make_shared<DeleteNode>(stmt.target_table->oid,
                                              stmt.target_rowid_ids,
                                              stmt.count_output_id, plan));
}

Result<PhysPtr> LegacyPlanner::Plan(const BoundStatement& stmt) {
  next_scan_id_ = 1;
  if (stmt.kind != BoundStatement::Kind::kSelect) return PlanDml(stmt);
  MPPDB_ASSIGN_OR_RETURN(Planned planned, PlanNode(stmt.root));
  if (planned.distributed) return Gather(planned.plan);
  return planned.plan;
}

}  // namespace mppdb
