#include "optimizer/logical.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace mppdb {

std::vector<ColRefId> LogicalGet::PartitionKeyIds() const {
  std::vector<ColRefId> keys;
  for (int col : table_->PartitionKeyColumns()) {
    keys.push_back(column_ids_[static_cast<size_t>(col)]);
  }
  return keys;
}

std::vector<ColRefId> LogicalGet::DistributionKeyIds() const {
  std::vector<ColRefId> keys;
  for (int col : table_->distribution_columns) {
    keys.push_back(column_ids_[static_cast<size_t>(col)]);
  }
  return keys;
}

std::vector<ColRefId> LogicalGet::OutputIds() const {
  std::vector<ColRefId> out = column_ids_;
  out.insert(out.end(), rowid_ids_.begin(), rowid_ids_.end());
  return out;
}

std::string LogicalGet::Describe() const {
  return "Get(" + table_->name + (alias_.empty() ? "" : " as " + alias_) + ")";
}

std::vector<ColRefId> LogicalJoin::OutputIds() const {
  std::vector<ColRefId> out = child(0)->OutputIds();
  if (join_type_ == JoinType::kSemi) return out;
  std::vector<ColRefId> right = child(1)->OutputIds();
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

std::string LogicalJoin::Describe() const {
  std::string name = join_type_ == JoinType::kSemi ? "SemiJoin" : "Join";
  return name + "(" + (predicate_ ? predicate_->ToString() : "true") + ")";
}

std::vector<ColRefId> LogicalProject::OutputIds() const {
  std::vector<ColRefId> out;
  out.reserve(items_.size());
  for (const auto& item : items_) out.push_back(item.output_id);
  return out;
}

std::string LogicalProject::Describe() const {
  std::vector<std::string> parts;
  for (const auto& item : items_) parts.push_back(item.name);
  return "Project(" + Join(parts, ", ") + ")";
}

std::vector<ColRefId> LogicalAgg::OutputIds() const {
  std::vector<ColRefId> out = group_by_;
  for (const auto& agg : aggs_) out.push_back(agg.output_id);
  return out;
}

std::string LogicalAgg::Describe() const {
  return "Agg(groups=" + std::to_string(group_by_.size()) +
         ", aggs=" + std::to_string(aggs_.size()) + ")";
}

namespace {

void LogicalToStringRecursive(const LogicalPtr& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->Describe());
  out->append("\n");
  for (const auto& child : node->children()) {
    LogicalToStringRecursive(child, depth + 1, out);
  }
}

LogicalPtr WithChildren(const LogicalPtr& node, std::vector<LogicalPtr> children) {
  bool same = true;
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] != node->child(i)) {
      same = false;
      break;
    }
  }
  if (same) return node;
  switch (node->kind()) {
    case LogicalKind::kSelect:
      return std::make_shared<LogicalSelect>(
          static_cast<const LogicalSelect&>(*node).predicate(), children[0]);
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(*node);
      return std::make_shared<LogicalJoin>(join.join_type(), join.predicate(),
                                           children[0], children[1]);
    }
    case LogicalKind::kProject:
      return std::make_shared<LogicalProject>(
          static_cast<const LogicalProject&>(*node).items(), children[0]);
    case LogicalKind::kAgg: {
      const auto& agg = static_cast<const LogicalAgg&>(*node);
      return std::make_shared<LogicalAgg>(agg.group_by(), agg.aggs(), children[0]);
    }
    case LogicalKind::kSort:
      return std::make_shared<LogicalSort>(
          static_cast<const LogicalSort&>(*node).keys(), children[0]);
    case LogicalKind::kLimit:
      return std::make_shared<LogicalLimit>(
          static_cast<const LogicalLimit&>(*node).limit(), children[0]);
    default:
      MPPDB_CHECK(false);
      return node;
  }
}

// True if every column referenced by `expr` is produced by `node`.
bool CoveredBy(const ExprPtr& expr, const LogicalPtr& node) {
  std::unordered_set<ColRefId> refs;
  CollectColumnRefs(expr, &refs);
  std::vector<ColRefId> outputs = node->OutputIds();
  std::unordered_set<ColRefId> produced(outputs.begin(), outputs.end());
  for (ColRefId id : refs) {
    if (produced.count(id) == 0) return false;
  }
  return true;
}

// Pushes the conjuncts of `pred` as deep as possible over `node`; conjuncts
// that cannot descend wrap the result in a Select.
LogicalPtr PushPredicate(std::vector<ExprPtr> conjuncts, LogicalPtr node);

LogicalPtr NormalizeRecursive(const LogicalPtr& node) {
  if (node->kind() == LogicalKind::kSelect) {
    const auto& select = static_cast<const LogicalSelect&>(*node);
    LogicalPtr child = NormalizeRecursive(select.child(0));
    return PushPredicate(SplitConjuncts(select.predicate()), std::move(child));
  }
  std::vector<LogicalPtr> children;
  children.reserve(node->children().size());
  for (const auto& child : node->children()) {
    children.push_back(NormalizeRecursive(child));
  }
  return WithChildren(node, std::move(children));
}

LogicalPtr PushPredicate(std::vector<ExprPtr> conjuncts, LogicalPtr node) {
  if (conjuncts.empty()) return node;
  switch (node->kind()) {
    case LogicalKind::kSelect: {
      // Merge adjacent selects, then retry.
      const auto& select = static_cast<const LogicalSelect&>(*node);
      std::vector<ExprPtr> merged = SplitConjuncts(select.predicate());
      merged.insert(merged.end(), conjuncts.begin(), conjuncts.end());
      return PushPredicate(std::move(merged), select.child(0));
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(*node);
      std::vector<ExprPtr> left_preds, right_preds, here;
      for (ExprPtr& conjunct : conjuncts) {
        if (CoveredBy(conjunct, join.child(0))) {
          left_preds.push_back(std::move(conjunct));
        } else if (join.join_type() == JoinType::kInner &&
                   CoveredBy(conjunct, join.child(1))) {
          right_preds.push_back(std::move(conjunct));
        } else {
          here.push_back(std::move(conjunct));
        }
      }
      LogicalPtr left = PushPredicate(std::move(left_preds), join.child(0));
      LogicalPtr right = PushPredicate(std::move(right_preds), join.child(1));
      // Conjuncts spanning both sides of an inner join merge into the join
      // predicate (enabling hash joins and join-induced partition
      // elimination for comma-join syntax); semi joins keep them above.
      ExprPtr join_pred = join.predicate();
      ExprPtr rest = nullptr;
      if (join.join_type() == JoinType::kInner) {
        here.push_back(join_pred);
        join_pred = Conj(std::move(here));
      } else {
        rest = Conj(std::move(here));
      }
      LogicalPtr rebuilt = std::make_shared<LogicalJoin>(
          join.join_type(), join_pred, std::move(left), std::move(right));
      if (rest == nullptr) return rebuilt;
      return std::make_shared<LogicalSelect>(std::move(rest), std::move(rebuilt));
    }
    case LogicalKind::kProject: {
      // Push conjuncts that only reference pass-through columns.
      const auto& project = static_cast<const LogicalProject&>(*node);
      std::unordered_set<ColRefId> pass_through;
      for (const auto& item : project.items()) {
        if (item.expr->kind() == ExprKind::kColumnRef &&
            static_cast<const ColumnRefExpr&>(*item.expr).id() == item.output_id) {
          pass_through.insert(item.output_id);
        }
      }
      std::vector<ExprPtr> below, here;
      for (ExprPtr& conjunct : conjuncts) {
        std::unordered_set<ColRefId> refs;
        CollectColumnRefs(conjunct, &refs);
        bool ok = true;
        for (ColRefId id : refs) {
          if (pass_through.count(id) == 0) {
            ok = false;
            break;
          }
        }
        (ok ? below : here).push_back(std::move(conjunct));
      }
      LogicalPtr child = PushPredicate(std::move(below), project.child(0));
      LogicalPtr rebuilt = std::make_shared<LogicalProject>(project.items(),
                                                            std::move(child));
      ExprPtr rest = Conj(std::move(here));
      if (rest == nullptr) return rebuilt;
      return std::make_shared<LogicalSelect>(std::move(rest), std::move(rebuilt));
    }
    default: {
      ExprPtr pred = Conj(std::move(conjuncts));
      MPPDB_CHECK(pred != nullptr);
      return std::make_shared<LogicalSelect>(std::move(pred), std::move(node));
    }
  }
}

}  // namespace

EquiJoinKeys ExtractEquiJoinKeys(const ExprPtr& pred,
                                 const std::vector<ColRefId>& left_ids,
                                 const std::vector<ColRefId>& right_ids) {
  EquiJoinKeys keys;
  std::unordered_set<ColRefId> left_set(left_ids.begin(), left_ids.end());
  std::unordered_set<ColRefId> right_set(right_ids.begin(), right_ids.end());
  std::vector<ExprPtr> residual;
  for (const ExprPtr& conjunct : SplitConjuncts(pred)) {
    if (conjunct->kind() == ExprKind::kComparison) {
      const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
      if (cmp.op() == CompareOp::kEq &&
          cmp.child(0)->kind() == ExprKind::kColumnRef &&
          cmp.child(1)->kind() == ExprKind::kColumnRef) {
        ColRefId a = static_cast<const ColumnRefExpr&>(*cmp.child(0)).id();
        ColRefId b = static_cast<const ColumnRefExpr&>(*cmp.child(1)).id();
        if (left_set.count(a) > 0 && right_set.count(b) > 0) {
          keys.left.push_back(a);
          keys.right.push_back(b);
          continue;
        }
        if (left_set.count(b) > 0 && right_set.count(a) > 0) {
          keys.left.push_back(b);
          keys.right.push_back(a);
          continue;
        }
      }
    }
    residual.push_back(conjunct);
  }
  keys.residual = Conj(std::move(residual));
  return keys;
}

std::string LogicalToString(const LogicalPtr& plan) {
  std::string out;
  LogicalToStringRecursive(plan, 0, &out);
  return out;
}

LogicalPtr NormalizeLogical(const LogicalPtr& plan) { return NormalizeRecursive(plan); }

}  // namespace mppdb
