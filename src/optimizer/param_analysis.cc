#include "optimizer/param_analysis.h"

#include "sql/binder.h"
#include "types/date.h"

namespace mppdb {

namespace {

// Comparison family, mirroring the binder's: string / bool / numeric-and-date.
int TypeFamily(TypeId t) {
  if (t == TypeId::kString) return 0;
  if (t == TypeId::kBool) return 1;
  return 2;
}

void NoteParam(int index, std::optional<TypeId> expected, PlanParamAnalysis* out) {
  if (index < 0) return;
  if (index + 1 > out->param_count) {
    out->param_count = index + 1;
    out->slots.resize(static_cast<size_t>(out->param_count));
  }
  ParamSlot& slot = out->slots[static_cast<size_t>(index)];
  slot.used = true;
  if (!slot.expected.has_value() && expected.has_value()) slot.expected = expected;
}

// Marks `expr` (if a parameter) as expecting its context peer's type.
void ExpectFromPeer(const ExprPtr& expr, const ExprPtr& peer,
                    PlanParamAnalysis* out) {
  if (expr == nullptr || expr->kind() != ExprKind::kParam) return;
  if (peer == nullptr || peer->kind() == ExprKind::kParam) return;
  NoteParam(static_cast<const ParamExpr&>(*expr).index(), InferExprType(peer), out);
}

void WalkExpr(const ExprPtr& expr, PlanParamAnalysis* out) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kParam:
      NoteParam(static_cast<const ParamExpr&>(*expr).index(), std::nullopt, out);
      return;
    case ExprKind::kComparison:
      ExpectFromPeer(expr->child(0), expr->child(1), out);
      ExpectFromPeer(expr->child(1), expr->child(0), out);
      break;
    case ExprKind::kInList: {
      // Every list item pairs with the probe (and vice versa, against the
      // first typed item) exactly as the binder's per-item CoercePair does.
      const ExprPtr& probe = expr->child(0);
      for (size_t i = 1; i < expr->children().size(); ++i) {
        ExpectFromPeer(expr->child(i), probe, out);
        ExpectFromPeer(probe, expr->child(i), out);
      }
      break;
    }
    case ExprKind::kArith:
      // Arithmetic requires numeric operands; the binder exempts parameters,
      // so record the expectation here for the rebind-time check.
      for (const ExprPtr& child : expr->children()) {
        if (child != nullptr && child->kind() == ExprKind::kParam) {
          NoteParam(static_cast<const ParamExpr&>(*child).index(), TypeId::kInt64,
                    out);
        }
      }
      break;
    default:
      break;
  }
  for (const ExprPtr& child : expr->children()) WalkExpr(child, out);
}

void WalkNode(const PhysPtr& node, PlanParamAnalysis* out) {
  switch (node->kind()) {
    case PhysNodeKind::kFilter:
      WalkExpr(static_cast<const FilterNode&>(*node).predicate(), out);
      break;
    case PhysNodeKind::kProject:
      for (const ProjectItem& item : static_cast<const ProjectNode&>(*node).items()) {
        WalkExpr(item.expr, out);
      }
      break;
    case PhysNodeKind::kHashJoin:
      WalkExpr(static_cast<const HashJoinNode&>(*node).residual(), out);
      break;
    case PhysNodeKind::kNestedLoopJoin:
      WalkExpr(static_cast<const NestedLoopJoinNode&>(*node).predicate(), out);
      break;
    case PhysNodeKind::kIndexNLJoin:
      WalkExpr(static_cast<const IndexNLJoinNode&>(*node).residual(), out);
      break;
    case PhysNodeKind::kHashAgg:
      for (const AggItem& item : static_cast<const HashAggNode&>(*node).aggs()) {
        WalkExpr(item.arg, out);
      }
      break;
    case PhysNodeKind::kPartitionSelector:
      for (const ExprPtr& pred :
           static_cast<const PartitionSelectorNode&>(*node).level_predicates()) {
        WalkExpr(pred, out);
      }
      break;
    case PhysNodeKind::kUpdate:
      for (const UpdateSetItem& item :
           static_cast<const UpdateNode&>(*node).set_items()) {
        WalkExpr(item.value, out);
      }
      break;
    case PhysNodeKind::kDynamicIndexScan:
      // Seek bounds are constant Datums by construction (sargable analysis
      // yields no interval from a $n placeholder); only the residual
      // predicate can carry parameters.
      WalkExpr(static_cast<const DynamicIndexScanNode&>(*node).residual(), out);
      break;
    // Kinds that embed no scalar expressions (ValuesNode rows are folded
    // Datums; Sort and TopN keys, Motion hash columns, and IndexNLJoin outer
    // keys are column ids; Limit and TopN counts are plain integers).
    case PhysNodeKind::kTableScan:
    case PhysNodeKind::kCheckedPartScan:
    case PhysNodeKind::kDynamicScan:
    case PhysNodeKind::kSequence:
    case PhysNodeKind::kAppend:
    case PhysNodeKind::kSort:
    case PhysNodeKind::kLimit:
    case PhysNodeKind::kTopN:
    case PhysNodeKind::kMotion:
    case PhysNodeKind::kValues:
    case PhysNodeKind::kInsert:
    case PhysNodeKind::kDelete:
      break;
    default:
      // A node kind this analysis does not know may carry parameters the
      // rebind rewrite would miss: conservatively uncacheable.
      out->invariant = false;
      break;
  }
  for (const PhysPtr& child : node->children()) WalkNode(child, out);
}

}  // namespace

PlanParamAnalysis AnalyzePlanParams(const PhysPtr& plan) {
  PlanParamAnalysis out;
  if (plan != nullptr) WalkNode(plan, &out);
  return out;
}

Result<std::vector<Datum>> CoerceParamValues(const PlanParamAnalysis& analysis,
                                             const std::vector<Datum>& values) {
  if (values.size() < static_cast<size_t>(analysis.param_count)) {
    return Status::InvalidArgument(
        "statement needs " + std::to_string(analysis.param_count) +
        " parameter(s), got " + std::to_string(values.size()));
  }
  std::vector<Datum> coerced = values;
  for (size_t i = 0; i < analysis.slots.size(); ++i) {
    const ParamSlot& slot = analysis.slots[i];
    if (!slot.used || !slot.expected.has_value()) continue;
    Datum& value = coerced[i];
    if (value.is_null()) continue;
    if (*slot.expected == TypeId::kDate && value.type() == TypeId::kString) {
      int32_t days = 0;
      if (!date::Parse(value.string_value(), &days)) {
        return Status::BindError("expected a date literal, got '" +
                                 value.string_value() + "'");
      }
      value = Datum::Date(days);
      continue;
    }
    if (TypeFamily(*slot.expected) != TypeFamily(value.type())) {
      return Status::BindError("cannot bind $" + std::to_string(i + 1) + " of type " +
                               TypeIdToString(value.type()) + " where " +
                               TypeIdToString(*slot.expected) + " is expected");
    }
  }
  return coerced;
}

}  // namespace mppdb
