#ifndef MPPDB_OPTIMIZER_PLACEMENT_H_
#define MPPDB_OPTIMIZER_PLACEMENT_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "optimizer/part_selector_spec.h"

namespace mppdb {

/// Direct implementation of the paper's PartitionSelector placement
/// (§2.3, Algorithms 1-4) over physical expression trees.
///
/// Input: a physical tree containing DynamicScans but no PartitionSelectors.
/// Output: an equivalent tree where every DynamicScan has exactly one
/// PartitionSelector placed for it —
///   * adjacent (Sequence(PartitionSelector, DynamicScan)) when only static
///     predicates apply (Figs. 5(a)-(c)), or
///   * as a pass-through operator on the join side that executes first, when
///     a join predicate constrains the partitioning key (Fig. 5(d)),
/// with all predicates accumulated on the way down (Algorithms 3-4).
///
/// Motion safety: a (PartitionSelector, DynamicScan) pair must share a plan
/// slice (paper §3.1). When pushing a join spec to the opposite side would
/// strand the pair across a Motion (the DynamicScan sits below a Motion on
/// its own side), the algorithm falls back to resolving the spec on the
/// scan's side, forgoing dynamic elimination rather than producing an
/// invalid plan.

/// Builds the initial specs by traversing the tree and collecting every
/// DynamicScan (paper: "initialized by traversing the tree and identifying
/// all DynamicScans that need corresponding PartitionSelectors").
std::vector<PartSelectorSpec> CollectUnresolvedScans(const PhysPtr& plan,
                                                     const Catalog& catalog);

/// Algorithm 1 (PlacePartSelectors): returns the tree with all specs
/// enforced.
Result<PhysPtr> PlacePartSelectors(const PhysPtr& expr,
                                   std::vector<PartSelectorSpec> specs,
                                   const Catalog& catalog);

/// Convenience: CollectUnresolvedScans + PlacePartSelectors.
Result<PhysPtr> PlaceAllPartSelectors(const PhysPtr& plan, const Catalog& catalog);

/// Per-level FindPredOnKey over `pred`; merges hits into `spec` (conjoined
/// with whatever was already collected). Returns true if any level matched.
/// `available` is the set of columns whose values the selector will have at
/// runtime (empty for static extraction; the first-executing join side's
/// outputs for join-induced dynamic elimination).
bool AugmentSpecFromPredicate(const ExprPtr& pred,
                              const std::unordered_set<ColRefId>& available,
                              PartSelectorSpec* spec);

/// Builds the PartitionSelector operator for a spec: pass-through when
/// `child` is non-null, standalone otherwise (standalone selectors keep only
/// statically evaluable predicate conjuncts per level).
PhysPtr MakePartitionSelector(const PartSelectorSpec& spec, PhysPtr child);

/// Validation of the producer/consumer contract (tested invariant): every
/// DynamicScan has a PartitionSelector with its scan id that (a) executes
/// before it (left of it in execution order, or its ancestor via Sequence)
/// and (b) shares its slice (no Motion between either operator and their
/// lowest common ancestor). Returns an error describing the first violation.
Status ValidateSelectorPlacement(const PhysPtr& plan);

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_PLACEMENT_H_
