#ifndef MPPDB_OPTIMIZER_PART_SELECTOR_SPEC_H_
#define MPPDB_OPTIMIZER_PART_SELECTOR_SPEC_H_

#include <string>
#include <vector>

#include "catalog/partition_scheme.h"
#include "expr/expr.h"

namespace mppdb {

/// The paper's PartSelectorSpec (Fig. 7, extended to multi-level in Fig. 11):
/// a compact description of the PartitionSelector that must be placed for one
/// unresolved DynamicScan. `part_predicates[i]` (nullable) is the predicate
/// collected so far for partitioning level i; it is augmented as the spec is
/// pushed through Select and Join operators (Algorithms 3 and 4).
struct PartSelectorSpec {
  int scan_id = -1;
  Oid table_oid = kInvalidOid;
  /// ColRefIds of the DynamicScan's partition-key output columns, per level.
  std::vector<ColRefId> part_keys;
  /// Per-level predicate over part_keys[i] (plus, for join-induced dynamic
  /// elimination, columns of the subtree the selector is placed on); null
  /// when no predicate has been collected for that level.
  std::vector<ExprPtr> part_predicates;

  std::string ToString() const;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_PART_SELECTOR_SPEC_H_
