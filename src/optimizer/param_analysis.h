#ifndef MPPDB_OPTIMIZER_PARAM_ANALYSIS_H_
#define MPPDB_OPTIMIZER_PARAM_ANALYSIS_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "exec/plan.h"
#include "types/datum.h"

namespace mppdb {

/// What one $n slot expects at rebind time, inferred from the contexts the
/// parameter appears in (comparison peers, IN-list probes, arithmetic and
/// sum/avg operands).
struct ParamSlot {
  /// True once the parameter was seen anywhere in the plan.
  bool used = false;
  /// Static type of the strongest typed context peer, when one exists. A
  /// kDate expectation triggers string-to-date coercion at rebind (mirroring
  /// the binder's CoerceToDate for inline literals); any other expectation is
  /// checked by comparison family only.
  std::optional<TypeId> expected;
};

/// Result of walking a physical plan for $n parameters.
///
/// `invariant` is the cacheability verdict: true iff every parameter sits in
/// a scalar or partition-selection expression context that plan-parameter
/// rebinding (BindPlanParams) rewrites — Filter/NLJ predicates, Project
/// items, join residuals, HashAgg arguments, PartitionSelector level
/// predicates, Update set items. A parameter anywhere else (or any plan node
/// kind this analysis does not know) would survive rebinding as an unbound
/// placeholder, so such plans must not be cached.
struct PlanParamAnalysis {
  bool invariant = true;
  /// 1 + highest parameter index seen (0 when the plan has no parameters).
  int param_count = 0;
  /// Per-slot expectations, `param_count` entries.
  std::vector<ParamSlot> slots;
};

/// Walks every expression embedded in `plan` (exhaustive over node kinds).
PlanParamAnalysis AnalyzePlanParams(const PhysPtr& plan);

/// Validates and coerces `values` against `analysis` before substitution:
///  * arity: at least `param_count` values, else InvalidArgument;
///  * kDate expectation + string value: parsed to a Date datum (the inline-
///    literal bind path's CoerceToDate), BindError on a malformed date;
///  * other typed expectations: comparison-family check (string / bool /
///    numeric-and-date), BindError on mismatch — the same verdict the binder
///    gives the equivalent inline literal.
/// Returns the (possibly coerced) values ready for BindPlanParams.
Result<std::vector<Datum>> CoerceParamValues(const PlanParamAnalysis& analysis,
                                             const std::vector<Datum>& values);

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_PARAM_ANALYSIS_H_
