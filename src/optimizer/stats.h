#ifndef MPPDB_OPTIMIZER_STATS_H_
#define MPPDB_OPTIMIZER_STATS_H_

#include "optimizer/logical.h"
#include "storage/storage.h"

namespace mppdb {

/// Heuristic cardinality estimation over logical trees. Row counts of base
/// tables come from storage; predicate selectivities use the classic
/// System-R constants. Good enough to drive the broadcast-vs-redistribute
/// and build-side choices the paper's experiments depend on.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const StorageEngine* storage) : storage_(storage) {}

  /// Estimated output rows of a logical subtree.
  double EstimateRows(const LogicalPtr& node) const;

  /// Estimated selectivity of a predicate in [0, 1].
  static double Selectivity(const ExprPtr& pred);

 private:
  const StorageEngine* storage_;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_STATS_H_
