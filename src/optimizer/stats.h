#ifndef MPPDB_OPTIMIZER_STATS_H_
#define MPPDB_OPTIMIZER_STATS_H_

#include <optional>

#include "optimizer/logical.h"
#include "storage/storage.h"

namespace mppdb {

/// Synopsis-derived statistics of one base-table column, aggregated over the
/// zone-map rollups of every (unit, segment) slice of the table. No separate
/// stats-collection pass: the same synopses that drive data skipping double
/// as the optimizer's column statistics.
struct ColumnStats {
  double row_count = 0;       ///< rows in the table
  double non_null_count = 0;  ///< non-null values of the column
  /// Estimated distinct non-null values, at least 1. For integral-family
  /// columns the value span min..max capped by the non-null count — exact
  /// for dense key domains, an upper bound otherwise; for other families the
  /// non-null count (every value potentially distinct).
  double ndv = 1;
  /// Global extremes of the column; `range_valid` only when every slice
  /// rollup is trustworthy (single comparison family, see ColumnSynopsis)
  /// and all slices agree on the family.
  Datum min;
  Datum max;
  bool range_valid = false;
};

/// Cardinality estimation over logical and physical trees. Base-table row
/// counts come from storage; join-key NDV and min/max come from the zone-map
/// slice rollups; predicate selectivities still use the classic System-R
/// constants. Feeds the broadcast-vs-redistribute and build-side choices and
/// the runtime join-filter placement cost gate.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const StorageEngine* storage) : storage_(storage) {}

  /// Estimated output rows of a logical subtree.
  double EstimateRows(const LogicalPtr& node) const;

  /// Estimated output rows of a physical subtree: the same arithmetic as
  /// EstimateRows applied after implementation choices exist. The join-filter
  /// placement pass runs on the chosen physical plan, so its cost gate
  /// estimates build and probe sides here.
  double EstimatePhysicalRows(const PhysicalNode& node) const;

  /// Synopsis-backed statistics of one schema column (`column` is the schema
  /// position) of a stored table. nullopt if the table has no storage or the
  /// position is out of range.
  std::optional<ColumnStats> TableColumnStats(Oid table_oid, int column) const;

  /// Resolves a ColRefId through a logical subtree to its originating
  /// base-table column — crossing row-preserving operators and ColumnRef
  /// projections — and returns that column's stats. nullopt for computed
  /// columns and Values outputs.
  std::optional<ColumnStats> ResolveColumnStats(const LogicalPtr& node,
                                                ColRefId id) const;

  /// Physical-tree counterpart of ResolveColumnStats.
  std::optional<ColumnStats> ResolvePhysicalColumnStats(const PhysicalNode& node,
                                                        ColRefId id) const;

  /// Estimated selectivity of a predicate in [0, 1].
  static double Selectivity(const ExprPtr& pred);

 private:
  /// Selectivity of an equi-join over aligned key pairs whose per-side stats
  /// have been resolved (nullopt where resolution failed): the product over
  /// pairs of 1 / max(ndv_left, ndv_right), every NDV capped by its side's
  /// estimated input rows and unresolved sides falling back to the input
  /// rows themselves (the classic |L⋈R| ≈ L·R / max(L, R) shape).
  static double EquiJoinSelectivity(
      const std::vector<std::optional<ColumnStats>>& left_stats,
      const std::vector<std::optional<ColumnStats>>& right_stats,
      double left_rows, double right_rows);

  const StorageEngine* storage_;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_STATS_H_
