#ifndef MPPDB_OPTIMIZER_LOGICAL_H_
#define MPPDB_OPTIMIZER_LOGICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/plan.h"
#include "expr/expr.h"

namespace mppdb {

/// Allocates query-unique ColRefIds (the binder and optimizers share one
/// allocator per statement).
class ColRefAllocator {
 public:
  explicit ColRefAllocator(ColRefId first = 1) : next_(first) {}
  ColRefId Next() { return next_++; }
  ColRefId Peek() const { return next_; }

 private:
  ColRefId next_;
};

enum class LogicalKind {
  kGet,
  kSelect,
  kJoin,
  kProject,
  kAgg,
  kSort,
  kLimit,
  kValues,
};

class LogicalNode;
using LogicalPtr = std::shared_ptr<const LogicalNode>;

/// Immutable logical operator tree produced by the binder and consumed by
/// both optimizers.
class LogicalNode {
 public:
  LogicalNode(LogicalKind kind, std::vector<LogicalPtr> children)
      : kind_(kind), children_(std::move(children)) {}
  virtual ~LogicalNode() = default;

  LogicalKind kind() const { return kind_; }
  const std::vector<LogicalPtr>& children() const { return children_; }
  const LogicalPtr& child(size_t i) const { return children_[i]; }

  virtual std::vector<ColRefId> OutputIds() const = 0;
  virtual std::string Describe() const = 0;

 private:
  LogicalKind kind_;
  std::vector<LogicalPtr> children_;
};

/// Base-table access. `column_ids` are the allocated ColRefIds, one per
/// schema column; `rowid_ids` (3 ids) are present when this Get feeds a DML
/// statement that must locate physical rows.
class LogicalGet : public LogicalNode {
 public:
  LogicalGet(const TableDescriptor* table, std::string alias,
             std::vector<ColRefId> column_ids, std::vector<ColRefId> rowid_ids = {})
      : LogicalNode(LogicalKind::kGet, {}),
        table_(table),
        alias_(std::move(alias)),
        column_ids_(std::move(column_ids)),
        rowid_ids_(std::move(rowid_ids)) {}

  const TableDescriptor* table() const { return table_; }
  const std::string& alias() const { return alias_; }
  const std::vector<ColRefId>& column_ids() const { return column_ids_; }
  const std::vector<ColRefId>& rowid_ids() const { return rowid_ids_; }

  /// ColRefIds of the partition-key columns (one per level; empty if the
  /// table is unpartitioned).
  std::vector<ColRefId> PartitionKeyIds() const;

  /// ColRefIds of the distribution-key columns (kHashed only).
  std::vector<ColRefId> DistributionKeyIds() const;

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  const TableDescriptor* table_;
  std::string alias_;
  std::vector<ColRefId> column_ids_;
  std::vector<ColRefId> rowid_ids_;
};

class LogicalSelect : public LogicalNode {
 public:
  LogicalSelect(ExprPtr predicate, LogicalPtr child)
      : LogicalNode(LogicalKind::kSelect, {std::move(child)}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override {
    return "Select(" + predicate_->ToString() + ")";
  }

 private:
  ExprPtr predicate_;
};

/// Inner or (left-preserving) semi join; `predicate` is the full join
/// condition. For kSemi, children[0] is the preserved side and children[1]
/// the IN-subquery side; output columns are children[0]'s.
class LogicalJoin : public LogicalNode {
 public:
  LogicalJoin(JoinType join_type, ExprPtr predicate, LogicalPtr left, LogicalPtr right)
      : LogicalNode(LogicalKind::kJoin, {std::move(left), std::move(right)}),
        join_type_(join_type),
        predicate_(std::move(predicate)) {}

  JoinType join_type() const { return join_type_; }
  const ExprPtr& predicate() const { return predicate_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  JoinType join_type_;
  ExprPtr predicate_;
};

class LogicalProject : public LogicalNode {
 public:
  LogicalProject(std::vector<ProjectItem> items, LogicalPtr child)
      : LogicalNode(LogicalKind::kProject, {std::move(child)}),
        items_(std::move(items)) {}

  const std::vector<ProjectItem>& items() const { return items_; }
  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  std::vector<ProjectItem> items_;
};

class LogicalAgg : public LogicalNode {
 public:
  LogicalAgg(std::vector<ColRefId> group_by, std::vector<AggItem> aggs, LogicalPtr child)
      : LogicalNode(LogicalKind::kAgg, {std::move(child)}),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  const std::vector<ColRefId>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggs() const { return aggs_; }
  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  std::vector<ColRefId> group_by_;
  std::vector<AggItem> aggs_;
};

class LogicalSort : public LogicalNode {
 public:
  LogicalSort(std::vector<SortKey> keys, LogicalPtr child)
      : LogicalNode(LogicalKind::kSort, {std::move(child)}), keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override { return "Sort"; }

 private:
  std::vector<SortKey> keys_;
};

class LogicalLimit : public LogicalNode {
 public:
  LogicalLimit(size_t limit, LogicalPtr child)
      : LogicalNode(LogicalKind::kLimit, {std::move(child)}), limit_(limit) {}

  size_t limit() const { return limit_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override { return "Limit " + std::to_string(limit_); }

 private:
  size_t limit_;
};

class LogicalValues : public LogicalNode {
 public:
  LogicalValues(std::vector<Row> rows, std::vector<ColRefId> output_ids)
      : LogicalNode(LogicalKind::kValues, {}),
        rows_(std::move(rows)),
        output_ids_(std::move(output_ids)) {}

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<ColRefId> OutputIds() const override { return output_ids_; }
  std::string Describe() const override {
    return "Values(" + std::to_string(rows_.size()) + ")";
  }

 private:
  std::vector<Row> rows_;
  std::vector<ColRefId> output_ids_;
};

/// A bound statement handed to an optimizer. SELECTs carry just `root`; DML
/// statements additionally carry the target table and (for UPDATE) SET
/// items; their `root` computes the affected rows (including rowid columns
/// for UPDATE/DELETE).
struct BoundStatement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete };

  Kind kind = Kind::kSelect;
  /// EXPLAIN prefix: plan only, return the rendered plan.
  bool explain = false;
  /// EXPLAIN ANALYZE: execute too, appending execution statistics.
  bool explain_analyze = false;
  LogicalPtr root;
  /// Names of the root output columns, aligned with root->OutputIds().
  std::vector<std::string> output_names;

  // DML fields.
  const TableDescriptor* target_table = nullptr;
  std::vector<ColRefId> target_column_ids;  ///< target Get's column ids
  std::vector<ColRefId> target_rowid_ids;   ///< target Get's rowid ids
  std::vector<UpdateSetItem> set_items;     ///< UPDATE only
  ColRefId count_output_id = -1;            ///< DML result column
};

/// Equi-join keys mined from a join predicate: aligned column pairs plus the
/// non-equi residual (nullptr if fully equi).
struct EquiJoinKeys {
  std::vector<ColRefId> left;
  std::vector<ColRefId> right;
  ExprPtr residual;
};

/// Splits `pred` into `left col = right col` pairs (sides identified by the
/// given output-id sets) and a residual conjunction.
EquiJoinKeys ExtractEquiJoinKeys(const ExprPtr& pred,
                                 const std::vector<ColRefId>& left_ids,
                                 const std::vector<ColRefId>& right_ids);

/// Multi-line rendering of a logical tree.
std::string LogicalToString(const LogicalPtr& plan);

/// Normalization pass shared by both optimizers: flattens nested ANDs and
/// pushes Select predicates below Projects and into join children when a
/// conjunct references only one side (predicate pushdown).
LogicalPtr NormalizeLogical(const LogicalPtr& plan);

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_LOGICAL_H_
