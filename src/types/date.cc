#include "types/date.h"

#include <cstdio>

namespace mppdb {
namespace date {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

namespace {

// Civil-days algorithm (Howard Hinnant): days from 1970-01-01 to y-m-d.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                                      // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                           // [1, 12]
  *y = yr + (*m <= 2);
}

}  // namespace

int32_t FromYMD(int year, int month, int day) {
  return static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month), static_cast<unsigned>(day)));
}

void ToYMD(int32_t days, int* year, int* month, int* day) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool Parse(const std::string& text, int32_t* days) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) return false;
  *days = FromYMD(y, m, d);
  return true;
}

std::string ToString(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace date
}  // namespace mppdb
