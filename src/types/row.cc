#include "types/row.h"

namespace mppdb {

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

uint64_t HashRowColumns(const Row& row, const std::vector<int>& columns) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int col : columns) {
    uint64_t v = row[static_cast<size_t>(col)].Hash();
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace mppdb
