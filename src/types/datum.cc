#include "types/datum.h"

#include <functional>

#include "common/macros.h"
#include "types/date.h"

namespace mppdb {

Datum Datum::DateFromString(const std::string& ymd) {
  int32_t days = 0;
  MPPDB_CHECK(date::Parse(ymd, &days));
  return Date(days);
}

int64_t Datum::AsInt64() const {
  switch (type_) {
    case TypeId::kBool:
      return bool_value() ? 1 : 0;
    case TypeId::kInt32:
      return int32_value();
    case TypeId::kInt64:
      return int64_value();
    case TypeId::kDate:
      return date_value();
    default:
      MPPDB_CHECK(false);
      return 0;
  }
}

double Datum::AsDouble() const {
  if (type_ == TypeId::kDouble) return double_value();
  return static_cast<double>(AsInt64());
}

int Datum::Compare(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a.type_ == TypeId::kString || b.type_ == TypeId::kString) {
    MPPDB_CHECK(a.type_ == TypeId::kString && b.type_ == TypeId::kString);
    return a.string_value().compare(b.string_value());
  }
  if (a.type_ == TypeId::kBool || b.type_ == TypeId::kBool) {
    MPPDB_CHECK(a.type_ == b.type_);
    return (a.bool_value() ? 1 : 0) - (b.bool_value() ? 1 : 0);
  }
  if (a.type_ == TypeId::kDouble || b.type_ == TypeId::kDouble) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int64_t x = a.AsInt64(), y = b.AsInt64();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

uint64_t Datum::Hash() const {
  if (is_null()) return 0x3F2A9B1C5D7E0811ull;
  switch (type_) {
    case TypeId::kString: {
      // FNV-1a over the bytes.
      uint64_t h = 1469598103934665603ull;
      for (char c : string_value()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      return h;
    }
    case TypeId::kDouble: {
      double d = double_value();
      // Hash integral doubles like the equivalent int64 so that numeric
      // cross-type equality implies hash equality.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>()(as_int) * 0x9E3779B97F4A7C15ull;
      }
      return std::hash<double>()(d) * 0x9E3779B97F4A7C15ull;
    }
    default:
      return std::hash<int64_t>()(AsInt64()) * 0x9E3779B97F4A7C15ull;
  }
}

std::string Datum::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt32:
      return std::to_string(int32_value());
    case TypeId::kInt64:
      return std::to_string(int64_value());
    case TypeId::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case TypeId::kString:
      return "'" + string_value() + "'";
    case TypeId::kDate:
      return date::ToString(date_value());
  }
  return "?";
}

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt32:
      return "INT";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
  }
  return "?";
}

}  // namespace mppdb
