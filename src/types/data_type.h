#ifndef MPPDB_TYPES_DATA_TYPE_H_
#define MPPDB_TYPES_DATA_TYPE_H_

#include <string>

namespace mppdb {

/// Scalar SQL types supported by the engine. kDate is stored as days since
/// 1970-01-01 (see types/date.h).
enum class TypeId {
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Returns the SQL-ish name of a type ("INT", "BIGINT", ...).
const char* TypeIdToString(TypeId type);

/// True if the type is orderable and usable as a range-partitioning key.
inline bool IsOrderable(TypeId type) {
  (void)type;  // All currently supported types have a total order.
  return true;
}

/// True for integer-like types where a range [a, b) over consecutive values
/// can be enumerated.
inline bool IsIntegral(TypeId type) {
  return type == TypeId::kInt32 || type == TypeId::kInt64 ||
         type == TypeId::kDate;
}

inline bool IsNumeric(TypeId type) {
  return IsIntegral(type) || type == TypeId::kDouble;
}

}  // namespace mppdb

#endif  // MPPDB_TYPES_DATA_TYPE_H_
