#ifndef MPPDB_TYPES_ROW_H_
#define MPPDB_TYPES_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/datum.h"
#include "types/schema.h"

namespace mppdb {

/// A tuple: one Datum per schema column.
using Row = std::vector<Datum>;

/// Renders a row as "[v1, v2, ...]".
std::string RowToString(const Row& row);

/// Combined hash of the datums at the given column positions; used for hash
/// distribution and hash joins.
uint64_t HashRowColumns(const Row& row, const std::vector<int>& columns);

/// A batch of rows sharing a schema; the unit of data flow in the executor.
struct RowBatch {
  Schema schema;
  std::vector<Row> rows;

  size_t NumRows() const { return rows.size(); }
};

}  // namespace mppdb

#endif  // MPPDB_TYPES_ROW_H_
