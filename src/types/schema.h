#ifndef MPPDB_TYPES_SCHEMA_H_
#define MPPDB_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "types/data_type.h"

namespace mppdb {

/// A named, typed column of a table or intermediate result.
struct Column {
  std::string name;
  TypeId type;
};

/// Ordered list of columns describing a table or an operator's output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column with the given name, or -1 if absent.
  int FindColumn(const std::string& name) const;

  void AddColumn(Column col) { columns_.push_back(std::move(col)); }

  /// Concatenation of two schemas (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(a INT, b VARCHAR)" rendering for debugging.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace mppdb

#endif  // MPPDB_TYPES_SCHEMA_H_
