#ifndef MPPDB_TYPES_DATE_H_
#define MPPDB_TYPES_DATE_H_

#include <cstdint>
#include <string>

namespace mppdb {

/// Calendar helpers for the kDate type. Dates are represented as int32 days
/// since 1970-01-01 (proleptic Gregorian), matching how the engine stores and
/// range-partitions dates.
namespace date {

/// Days since epoch for year-month-day. Valid for years in [1600, 9999].
int32_t FromYMD(int year, int month, int day);

/// Splits days-since-epoch into year, month, day.
void ToYMD(int32_t days, int* year, int* month, int* day);

/// Parses 'YYYY-MM-DD'. Returns false on malformed input.
bool Parse(const std::string& text, int32_t* days);

/// Formats as 'YYYY-MM-DD'.
std::string ToString(int32_t days);

/// Number of days in the given month (1-12) of the given year.
int DaysInMonth(int year, int month);

/// True for Gregorian leap years.
bool IsLeapYear(int year);

}  // namespace date
}  // namespace mppdb

#endif  // MPPDB_TYPES_DATE_H_
