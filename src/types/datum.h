#ifndef MPPDB_TYPES_DATUM_H_
#define MPPDB_TYPES_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "types/data_type.h"

namespace mppdb {

/// A single scalar value: one of the supported SQL types or NULL.
///
/// Numeric comparison follows SQL-ish promotion: if either side is a double
/// the comparison is in double, otherwise in int64. NULL ordering/semantics
/// are the responsibility of the expression evaluator; Compare() sorts NULL
/// before all non-NULL values so that Datum is usable as a sort key.
class Datum {
 public:
  /// Constructs NULL.
  Datum() : type_(TypeId::kInt64), value_(std::monostate{}) {}

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(TypeId::kBool, v); }
  static Datum Int32(int32_t v) { return Datum(TypeId::kInt32, v); }
  static Datum Int64(int64_t v) { return Datum(TypeId::kInt64, v); }
  static Datum Double(double v) { return Datum(TypeId::kDouble, v); }
  static Datum String(std::string v) { return Datum(TypeId::kString, std::move(v)); }
  /// Days since 1970-01-01.
  static Datum Date(int32_t days) { return Datum(TypeId::kDate, days); }
  /// Parses 'YYYY-MM-DD'; aborts on malformed input (test/workload helper).
  static Datum DateFromString(const std::string& ymd);

  bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  TypeId type() const { return type_; }

  bool bool_value() const { return std::get<bool>(value_); }
  int32_t int32_value() const { return std::get<int32_t>(value_); }
  int64_t int64_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const { return std::get<std::string>(value_); }
  int32_t date_value() const { return std::get<int32_t>(value_); }

  /// Numeric value widened to int64 (bool/int32/int64/date). Precondition:
  /// integral type, non-null.
  int64_t AsInt64() const;

  /// Numeric value widened to double. Precondition: numeric type, non-null.
  double AsDouble() const;

  /// Three-way comparison: negative / zero / positive. NULL compares before
  /// all non-NULL values; NULL == NULL here (sort semantics, not SQL).
  static int Compare(const Datum& a, const Datum& b);

  bool Equals(const Datum& other) const { return Compare(*this, other) == 0; }

  /// Stable 64-bit hash, equal for Equals() datums across numeric widths.
  uint64_t Hash() const;

  /// Human-readable rendering ("NULL", "42", "'abc'", "1997-03-01").
  std::string ToString() const;

  friend bool operator==(const Datum& a, const Datum& b) { return a.Equals(b); }
  friend bool operator<(const Datum& a, const Datum& b) { return Compare(a, b) < 0; }

 private:
  template <typename T>
  Datum(TypeId type, T&& v) : type_(type), value_(std::forward<T>(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int32_t, int64_t, double, std::string> value_;
};

}  // namespace mppdb

#endif  // MPPDB_TYPES_DATUM_H_
