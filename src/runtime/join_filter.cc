#include "runtime/join_filter.h"

#include "common/macros.h"
#include "exec/join_hash.h"
#include "expr/eval.h"

namespace mppdb {

namespace {

/// Per-lane odd multipliers (Arrow/impala-style split-block constants): each
/// lane derives its bit index from the same 32 low hash bits through a
/// distinct odd multiplicative hash, keeping the eight bits independent.
constexpr std::array<uint32_t, 8> kLaneSalts = {
    0x47b6137bu, 0x44974d91u, 0x8824ad5bu, 0xa2b7289du,
    0x705495c7u, 0x2df1424bu, 0x9efc4947u, 0x5c6bfb31u};

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Combined key hash of `positions` inside `row` — the exact CombineKeyHash
/// fold the join hash tables use, so the vectorized probe can reuse its
/// precomputed per-row key hashes against the bloom filter.
uint64_t KeyHash(const Row& row, const std::vector<int>& positions) {
  uint64_t h = kKeyHashSeed;
  for (int pos : positions) h = CombineKeyHash(h, row[static_cast<size_t>(pos)]);
  return h;
}

}  // namespace

BlockedBloomFilter::BlockedBloomFilter(size_t expected_keys) {
  const size_t blocks = NextPow2((expected_keys + kLanes - 1) / kLanes);
  blocks_.resize(blocks == 0 ? 1 : blocks, Block{});
}

BlockedBloomFilter::Block BlockedBloomFilter::MaskFor(uint64_t hash) {
  const uint32_t h = static_cast<uint32_t>(hash);
  Block mask;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    mask[lane] = uint32_t{1} << ((kLaneSalts[lane] * h) >> 27);
  }
  return mask;
}

void BlockedBloomFilter::Insert(uint64_t hash) {
  MPPDB_CHECK(!blocks_.empty());
  Block& block = blocks_[BlockIndex(hash)];
  const Block mask = MaskFor(hash);
  for (size_t lane = 0; lane < kLanes; ++lane) block[lane] |= mask[lane];
}

bool BlockedBloomFilter::MayContain(uint64_t hash) const {
  MPPDB_CHECK(!blocks_.empty());
  const Block& block = blocks_[BlockIndex(hash)];
  const Block mask = MaskFor(hash);
  for (size_t lane = 0; lane < kLanes; ++lane) {
    if ((block[lane] & mask[lane]) != mask[lane]) return false;
  }
  return true;
}

namespace {

/// Shared min/max + NULL gate of RowMayMatch/RowMayMatchHashed.
bool RangesAccept(const JoinFilterSummary& summary, const Row& row,
                  const std::vector<int>& positions) {
  MPPDB_CHECK(positions.size() == summary.key_ranges.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    const Datum& v = row[static_cast<size_t>(positions[i])];
    if (v.is_null()) return false;  // NULL keys never join
    const JoinFilterKeyRange& range = summary.key_ranges[i];
    if (!range.valid) continue;  // mixed-family build keys: bloom only
    // A probe value outside the build keys' comparison family can never
    // compare equal to any of them (and Datum::Compare would abort).
    if (!DatumsComparable(v, range.min)) return false;
    if (Datum::Compare(v, range.min) < 0 || Datum::Compare(v, range.max) > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool JoinFilterSummary::RowMayMatch(const Row& row,
                                    const std::vector<int>& positions) const {
  if (build_rows == 0) return false;
  if (!RangesAccept(*this, row, positions)) return false;
  return bloom.MayContain(KeyHash(row, positions));
}

bool JoinFilterSummary::RowMayMatchHashed(const Row& row,
                                          const std::vector<int>& positions,
                                          uint64_t key_hash) const {
  if (build_rows == 0) return false;
  if (!RangesAccept(*this, row, positions)) return false;
  return bloom.MayContain(key_hash);
}

bool JoinFilterSummary::ChunkProvablyDisjoint(
    const ChunkSynopsis& chunk, const std::vector<int>& positions) const {
  if (build_rows == 0) return true;  // empty build side rejects every row
  MPPDB_CHECK(positions.size() == key_ranges.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    const size_t pos = static_cast<size_t>(positions[i]);
    if (pos >= chunk.columns.size()) return false;
    const JoinFilterKeyRange& range = key_ranges[i];
    const ColumnSynopsis& col = chunk.columns[pos];
    // All-NULL key columns are covered by ProvablyDisjointFrom even when the
    // build range is invalid; otherwise an invalid range proves nothing.
    if (!range.valid) {
      if (col.non_null_count == 0 && col.null_count > 0) return true;
      continue;
    }
    if (col.ProvablyDisjointFrom(range.min, range.max)) return true;
  }
  return false;
}

JoinFilterSummaryBuilder::JoinFilterSummaryBuilder(size_t num_keys,
                                                   size_t expected_rows) {
  summary_.key_ranges.resize(num_keys);
  summary_.bloom = BlockedBloomFilter(expected_rows);
}

void JoinFilterSummaryBuilder::Add(const Row& row,
                                   const std::vector<int>& key_positions) {
  MPPDB_CHECK(key_positions.size() == summary_.key_ranges.size());
  for (int pos : key_positions) {
    if (row[static_cast<size_t>(pos)].is_null()) return;  // never joins
  }
  ++summary_.build_rows;
  for (size_t i = 0; i < key_positions.size(); ++i) {
    const Datum& v = row[static_cast<size_t>(key_positions[i])];
    JoinFilterKeyRange& range = summary_.key_ranges[i];
    if (summary_.build_rows == 1) {
      range.min = v;
      range.max = v;
      range.valid = true;
      continue;
    }
    if (!range.valid) continue;
    if (!DatumsComparable(range.min, v)) {
      range.valid = false;  // mixed families: range untrustworthy
      continue;
    }
    if (Datum::Compare(v, range.min) < 0) range.min = v;
    if (Datum::Compare(v, range.max) > 0) range.max = v;
  }
  summary_.bloom.Insert(KeyHash(row, key_positions));
}

}  // namespace mppdb
