#ifndef MPPDB_RUNTIME_PARTITION_FUNCTIONS_H_
#define MPPDB_RUNTIME_PARTITION_FUNCTIONS_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "runtime/propagation.h"

namespace mppdb {

/// The built-in partition selection functions of the paper's Table 1,
/// resolved against catalog metadata at query execution time. These are the
/// primitives the PartitionSelector implementations compose (paper §3.2):
/// static and dynamic selection differ only in whether the value argument
/// comes from the query text or from a joined tuple.
namespace partition_functions {

/// partition_expansion(rootOid): all leaf partition OIDs of the table.
Result<std::vector<Oid>> PartitionExpansion(const Catalog& catalog, Oid root_oid);

/// partition_selection(rootOid, value): OID of the leaf containing `value`
/// for the (single-level) partitioning key, or kInvalidOid (⊥).
Result<Oid> PartitionSelection(const Catalog& catalog, Oid root_oid, const Datum& value);

/// Multi-level overload: one key value per level.
Result<Oid> PartitionSelection(const Catalog& catalog, Oid root_oid,
                               const std::vector<Datum>& values);

/// partition_constraints(rootOid): leaf OIDs with their per-level
/// constraints (OID, min, minincl, max, maxincl generalized to interval
/// unions).
Result<std::vector<LeafPartitionInfo>> PartitionConstraints(const Catalog& catalog,
                                                            Oid root_oid);

/// partition_propagation(partScanId, oid): pushes the OID to the
/// DynamicScan with the given id on the given segment.
void PartitionPropagation(PartitionPropagationHub* hub, int segment, int scan_id,
                          Oid oid);

}  // namespace partition_functions
}  // namespace mppdb

#endif  // MPPDB_RUNTIME_PARTITION_FUNCTIONS_H_
