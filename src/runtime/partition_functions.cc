#include "runtime/partition_functions.h"

#include "common/macros.h"

namespace mppdb {
namespace partition_functions {

namespace {

Result<const PartitionScheme*> SchemeFor(const Catalog& catalog, Oid root_oid) {
  const TableDescriptor* table = catalog.FindTable(root_oid);
  if (table == nullptr) {
    return Status::NotFound("no table with oid " + std::to_string(root_oid));
  }
  if (!table->IsPartitioned()) {
    return Status::InvalidArgument("table " + table->name + " is not partitioned");
  }
  return table->partition_scheme.get();
}

}  // namespace

Result<std::vector<Oid>> PartitionExpansion(const Catalog& catalog, Oid root_oid) {
  MPPDB_ASSIGN_OR_RETURN(const PartitionScheme* scheme, SchemeFor(catalog, root_oid));
  return scheme->AllLeafOids();
}

Result<Oid> PartitionSelection(const Catalog& catalog, Oid root_oid,
                               const Datum& value) {
  return PartitionSelection(catalog, root_oid, std::vector<Datum>{value});
}

Result<Oid> PartitionSelection(const Catalog& catalog, Oid root_oid,
                               const std::vector<Datum>& values) {
  MPPDB_ASSIGN_OR_RETURN(const PartitionScheme* scheme, SchemeFor(catalog, root_oid));
  if (values.size() != scheme->num_levels()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(scheme->num_levels()) +
                                   " partition key values, got " +
                                   std::to_string(values.size()));
  }
  return scheme->RouteValues(values);
}

Result<std::vector<LeafPartitionInfo>> PartitionConstraints(const Catalog& catalog,
                                                            Oid root_oid) {
  MPPDB_ASSIGN_OR_RETURN(const PartitionScheme* scheme, SchemeFor(catalog, root_oid));
  return scheme->Leaves();
}

void PartitionPropagation(PartitionPropagationHub* hub, int segment, int scan_id,
                          Oid oid) {
  hub->Push(segment, scan_id, oid);
}

}  // namespace partition_functions
}  // namespace mppdb
