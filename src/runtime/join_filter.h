#ifndef MPPDB_RUNTIME_JOIN_FILTER_H_
#define MPPDB_RUNTIME_JOIN_FILTER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "storage/synopsis.h"
#include "types/row.h"

namespace mppdb {

/// Partitioned (split-block) bloom filter over 64-bit join-key hashes: the
/// filter is an array of 256-bit blocks, each split into eight 32-bit lanes;
/// a key selects one block with its high hash bits and sets/tests one bit per
/// lane derived from its low hash bits through per-lane odd multipliers. One
/// cache line per probe, and insertion is a pure bit-OR — commutative, so a
/// filter built from the same key multiset is bit-identical regardless of
/// insertion order (serial and parallel builds agree).
class BlockedBloomFilter {
 public:
  BlockedBloomFilter() = default;

  /// Sizes the filter for ~`expected_keys` distinct keys (block count is the
  /// next power of two of expected_keys / 8, i.e. ≥32 bits per key).
  explicit BlockedBloomFilter(size_t expected_keys);

  void Insert(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  size_t num_blocks() const { return blocks_.size(); }

 private:
  static constexpr size_t kLanes = 8;
  using Block = std::array<uint32_t, kLanes>;

  size_t BlockIndex(uint64_t hash) const {
    // Multiply-shift range reduction on the high 32 bits; the low 32 bits
    // are reserved for the in-block lane masks.
    return static_cast<size_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(hash >> 32)) *
         static_cast<uint64_t>(blocks_.size())) >>
        32);
  }
  static Block MaskFor(uint64_t hash);

  std::vector<Block> blocks_;
};

/// Exact min/max of one build-key column over the rows folded into a
/// JoinFilterSummary. `valid` only when at least one row was folded and all
/// key values stayed in a single comparison family (mirrors the
/// ColumnSynopsis `comparable` contract, so the range can be probed against
/// zone maps without cross-family Datum::Compare).
struct JoinFilterKeyRange {
  Datum min;
  Datum max;
  bool valid = false;
};

/// Value-level summary of a hash join's build keys, published through the
/// PartitionPropagationHub and consumed by probe-side scans: exact per-column
/// min/max (composes with the zone-map synopses to skip whole chunks and
/// slices) plus a blocked bloom filter over the combined key hash (rejects
/// surviving rows before they reach the join hash table or a Motion).
///
/// Only rows whose key columns are all non-null are folded in — NULL keys
/// never match an equi join — so a probe row with any NULL key is always
/// rejected, and an empty build side rejects every probe row.
struct JoinFilterSummary {
  /// Build rows folded in (all key columns non-null).
  size_t build_rows = 0;
  std::vector<JoinFilterKeyRange> key_ranges;  ///< one per key column
  BlockedBloomFilter bloom;

  /// Row-level probe: false if the row provably cannot join (NULL key, a key
  /// outside the build min/max or its comparison family, or a bloom miss).
  /// `positions` index the key columns inside `row`.
  bool RowMayMatch(const Row& row, const std::vector<int>& positions) const;

  /// RowMayMatch with the combined key hash precomputed: the vectorized
  /// probe hashes a surviving selection vector in one batch pass, then tests
  /// each row here. `key_hash` must be the CombineKeyHash fold over the same
  /// positions (see exec/join_hash.h); verdicts are identical to
  /// RowMayMatch's.
  bool RowMayMatchHashed(const Row& row, const std::vector<int>& positions,
                         uint64_t key_hash) const;

  /// Chunk-level probe (the synopsis probe API): true if the chunk's zone
  /// maps prove no row in it can pass RowMayMatch — some key column's
  /// non-null values all fall outside the build range, or the column is
  /// all-NULL, or the build side is empty. Conservative on untrustworthy
  /// synopses (mixed families).
  bool ChunkProvablyDisjoint(const ChunkSynopsis& chunk,
                             const std::vector<int>& positions) const;
};

/// Incremental builder: fold rows (from the join's materialized build side,
/// or from every source batch of a build-side Motion), then Finish(). The
/// expected row count must be final before the first Add — it sizes the
/// bloom filter — which is always available here because both producers
/// materialize their input before folding.
class JoinFilterSummaryBuilder {
 public:
  JoinFilterSummaryBuilder(size_t num_keys, size_t expected_rows);

  void Add(const Row& row, const std::vector<int>& key_positions);

  JoinFilterSummary Finish() { return std::move(summary_); }

 private:
  JoinFilterSummary summary_;
};

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_JOIN_FILTER_H_
