#ifndef MPPDB_RUNTIME_SPILL_SPILL_FILE_H_
#define MPPDB_RUNTIME_SPILL_SPILL_FILE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/row.h"

namespace mppdb {

/// One temporary file holding serialized row batches. Created through a
/// SpillFileManager; the file is unlinked when the SpillFile is destroyed,
/// so every control-flow path — success, cancellation, deadline expiry,
/// injected fault, retry teardown — reclaims the bytes as the owning
/// operator's state unwinds. Not thread-safe: each spill partition file is
/// written and read by one operator at a time.
///
/// I/O failures surface Status::Internal: a bad spill disk is an
/// environment fault, not a retriable query condition. Fault-injection
/// checks ("spill.open"/"spill.write"/"spill.read") live in the executor,
/// which consults FaultInjector and the QueryContext before each call here.
class SpillFile {
 public:
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Serializes rows[begin, end) as one framed batch and appends it to the
  /// file. Returns the number of bytes written (frame header included).
  Result<size_t> WriteBatch(const std::vector<Row>& rows, size_t begin,
                            size_t end);

  /// Flushes buffered writes and repositions to the start for reading.
  Status Rewind();

  /// Reads the next framed batch, appending its rows to `rows`. Returns the
  /// number of bytes read, or 0 at end-of-file.
  Result<size_t> ReadBatch(std::vector<Row>* rows);

  /// Rows written so far (frame counts summed).
  size_t num_rows() const { return num_rows_; }

  /// Bytes written so far.
  size_t bytes_written() const { return bytes_written_; }

  const std::string& path() const { return path_; }

 private:
  friend class SpillFileManager;
  SpillFile(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t num_rows_ = 0;
  size_t bytes_written_ = 0;
  std::string scratch_;  // reused encode/decode buffer
};

/// Owns a per-query spill directory. The directory is created lazily on the
/// first SpillFile (queries that never spill touch no filesystem state),
/// named uniquely per manager instance, and removed — with any stray
/// contents — by RemoveAll() or the destructor. Create() is thread-safe so
/// parallel segments can spill concurrently.
class SpillFileManager {
 public:
  /// Files go under `base_dir`, or std::filesystem::temp_directory_path()
  /// when empty.
  explicit SpillFileManager(std::string base_dir = "");
  ~SpillFileManager();

  SpillFileManager(const SpillFileManager&) = delete;
  SpillFileManager& operator=(const SpillFileManager&) = delete;

  /// Creates and opens a fresh spill file.
  Result<std::unique_ptr<SpillFile>> Create();

  /// Removes the spill directory and anything left in it. Idempotent.
  void RemoveAll();

 private:
  std::mutex mu_;
  std::string base_dir_;
  std::string dir_;  // empty until the first Create()
  uint64_t next_id_ = 0;
};

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_SPILL_SPILL_FILE_H_
