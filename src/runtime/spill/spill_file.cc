#include "runtime/spill/spill_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/macros.h"
#include "runtime/spill/row_codec.h"

namespace mppdb {

namespace {

// Batch frame header: row count + payload byte count, little-endian.
struct BatchHeader {
  uint32_t num_rows = 0;
  uint32_t payload_bytes = 0;
};

}  // namespace

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best effort; dir sweep backs it up
  }
}

Result<size_t> SpillFile::WriteBatch(const std::vector<Row>& rows,
                                     size_t begin, size_t end) {
  EncodeBatchBody(rows, begin, end, &scratch_);
  BatchHeader header;
  header.num_rows = static_cast<uint32_t>(end - begin);
  header.payload_bytes = static_cast<uint32_t>(scratch_.size());
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1 ||
      (!scratch_.empty() &&
       std::fwrite(scratch_.data(), 1, scratch_.size(), file_) !=
           scratch_.size())) {
    return Status::Internal("spill write failed for " + path_);
  }
  const size_t bytes = sizeof(header) + scratch_.size();
  num_rows_ += end - begin;
  bytes_written_ += bytes;
  return bytes;
}

Status SpillFile::Rewind() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("spill flush failed for " + path_);
  }
  std::rewind(file_);
  return Status::OK();
}

Result<size_t> SpillFile::ReadBatch(std::vector<Row>* rows) {
  BatchHeader header;
  const size_t got = std::fread(&header, sizeof(header), 1, file_);
  if (got != 1) {
    if (std::feof(file_)) return static_cast<size_t>(0);
    return Status::Internal("spill read failed for " + path_);
  }
  scratch_.resize(header.payload_bytes);
  if (header.payload_bytes > 0 &&
      std::fread(scratch_.data(), 1, scratch_.size(), file_) !=
          scratch_.size()) {
    return Status::Internal("spill read truncated for " + path_);
  }
  MPPDB_RETURN_IF_ERROR(DecodeBatchBody(scratch_, header.num_rows, rows));
  return sizeof(header) + static_cast<size_t>(header.payload_bytes);
}

SpillFileManager::SpillFileManager(std::string base_dir)
    : base_dir_(std::move(base_dir)) {}

SpillFileManager::~SpillFileManager() { RemoveAll(); }

Result<std::unique_ptr<SpillFile>> SpillFileManager::Create() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    std::error_code ec;
    std::filesystem::path base =
        base_dir_.empty() ? std::filesystem::temp_directory_path(ec)
                          : std::filesystem::path(base_dir_);
    if (ec) {
      return Status::Internal("spill: no temp directory available: " +
                              ec.message());
    }
    // Unique per manager instance: pid disambiguates processes sharing a
    // temp dir, the manager address disambiguates concurrent queries.
    std::filesystem::path dir =
        base / ("mppdb-spill-" + std::to_string(::getpid()) + "-" +
                std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("spill: cannot create directory " +
                              dir.string() + ": " + ec.message());
    }
    dir_ = dir.string();
  }
  std::string path =
      (std::filesystem::path(dir_) / ("part-" + std::to_string(next_id_++)))
          .string();
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::Internal("spill: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<SpillFile>(new SpillFile(std::move(path), file));
}

void SpillFileManager::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
  dir_.clear();
  next_id_ = 0;
}

}  // namespace mppdb
