#include "runtime/spill/row_codec.h"

#include <cstring>

#include "common/macros.h"

namespace mppdb {

namespace {

// One-byte datum tags. kNull carries no payload: a NULL Datum is always the
// default-constructed monostate (TypeId::kInt64), so no type needs recording.
enum DatumTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt32 = 2,
  kTagInt64 = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagDate = 6,
};

template <typename T>
void AppendLE(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(const std::string& data, size_t* offset, T* v) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(v, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Truncated() {
  return Status::Internal("spill batch truncated: datum extends past buffer");
}

}  // namespace

void EncodeDatum(const Datum& value, std::string* out) {
  if (value.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
    return;
  }
  switch (value.type()) {
    case TypeId::kBool:
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(value.bool_value() ? 1 : 0);
      return;
    case TypeId::kInt32:
      out->push_back(static_cast<char>(kTagInt32));
      AppendLE<int32_t>(value.int32_value(), out);
      return;
    case TypeId::kInt64:
      out->push_back(static_cast<char>(kTagInt64));
      AppendLE<int64_t>(value.int64_value(), out);
      return;
    case TypeId::kDouble:
      out->push_back(static_cast<char>(kTagDouble));
      AppendLE<double>(value.double_value(), out);
      return;
    case TypeId::kString: {
      const std::string& s = value.string_value();
      out->push_back(static_cast<char>(kTagString));
      AppendLE<uint32_t>(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      return;
    }
    case TypeId::kDate:
      out->push_back(static_cast<char>(kTagDate));
      AppendLE<int32_t>(value.date_value(), out);
      return;
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendLE<uint32_t>(static_cast<uint32_t>(row.size()), out);
  for (const Datum& v : row) EncodeDatum(v, out);
}

void EncodeBatchBody(const std::vector<Row>& rows, size_t begin, size_t end,
                     std::string* out) {
  out->clear();
  for (size_t i = begin; i < end; ++i) EncodeRow(rows[i], out);
}

Result<Datum> DecodeDatum(const std::string& data, size_t* offset) {
  if (*offset >= data.size()) return Truncated();
  const uint8_t tag = static_cast<uint8_t>(data[*offset]);
  ++*offset;
  switch (tag) {
    case kTagNull:
      return Datum::Null();
    case kTagBool: {
      if (*offset >= data.size()) return Truncated();
      const bool v = data[*offset] != 0;
      ++*offset;
      return Datum::Bool(v);
    }
    case kTagInt32: {
      int32_t v = 0;
      if (!ReadLE(data, offset, &v)) return Truncated();
      return Datum::Int32(v);
    }
    case kTagInt64: {
      int64_t v = 0;
      if (!ReadLE(data, offset, &v)) return Truncated();
      return Datum::Int64(v);
    }
    case kTagDouble: {
      double v = 0;
      if (!ReadLE(data, offset, &v)) return Truncated();
      return Datum::Double(v);
    }
    case kTagString: {
      uint32_t len = 0;
      if (!ReadLE(data, offset, &len)) return Truncated();
      if (data.size() - *offset < len) return Truncated();
      Datum v = Datum::String(data.substr(*offset, len));
      *offset += len;
      return v;
    }
    case kTagDate: {
      int32_t v = 0;
      if (!ReadLE(data, offset, &v)) return Truncated();
      return Datum::Date(v);
    }
    default:
      return Status::Internal("spill batch corrupt: unknown datum tag " +
                              std::to_string(static_cast<int>(tag)));
  }
}

Result<Row> DecodeRow(const std::string& data, size_t* offset) {
  uint32_t count = 0;
  if (!ReadLE(data, offset, &count)) return Truncated();
  Row row;
  row.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MPPDB_ASSIGN_OR_RETURN(Datum v, DecodeDatum(data, offset));
    row.push_back(std::move(v));
  }
  return row;
}

Status DecodeBatchBody(const std::string& data, uint32_t num_rows,
                       std::vector<Row>* rows) {
  size_t offset = 0;
  rows->reserve(rows->size() + num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    MPPDB_ASSIGN_OR_RETURN(Row row, DecodeRow(data, &offset));
    rows->push_back(std::move(row));
  }
  if (offset != data.size()) {
    return Status::Internal("spill batch corrupt: trailing bytes after rows");
  }
  return Status::OK();
}

size_t DatumPayloadBytes(const Datum& value) {
  if (!value.is_null() && value.type() == TypeId::kString) {
    return value.string_value().size();
  }
  return 0;
}

size_t RowPayloadBytes(const Row& row) {
  size_t bytes = 0;
  for (const Datum& v : row) bytes += DatumPayloadBytes(v);
  return bytes;
}

size_t RowsPayloadBytes(const std::vector<Row>& rows, size_t begin,
                        size_t end) {
  size_t bytes = 0;
  for (size_t i = begin; i < end; ++i) bytes += RowPayloadBytes(rows[i]);
  return bytes;
}

size_t RowsPayloadBytes(const std::vector<Row>& rows) {
  return RowsPayloadBytes(rows, 0, rows.size());
}

}  // namespace mppdb
