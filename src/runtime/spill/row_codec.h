#ifndef MPPDB_RUNTIME_SPILL_ROW_CODEC_H_
#define MPPDB_RUNTIME_SPILL_ROW_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/row.h"

namespace mppdb {

/// Binary serialization for rows spilled to disk. The format is
/// self-describing per datum (a one-byte type tag followed by a
/// little-endian fixed-width payload, or a u32-length-prefixed byte string),
/// so a decoded row reproduces the exact Datum — type id included — that was
/// encoded. Spilling must be stats-only-visible (DESIGN.md invariant 14);
/// a codec that widened int32 to int64 or dropped the date/int32 distinction
/// would change downstream hashing and rendering, so the tag preserves the
/// TypeId verbatim.
///
/// Batch framing: u32 row count, u32 payload byte count, then the rows
/// back to back (each row is u32 datum count + datums). The payload length
/// lets a reader pull one batch with two reads and detect truncation.

/// Appends one datum to `out`.
void EncodeDatum(const Datum& value, std::string* out);

/// Appends one row (u32 datum count + datums) to `out`.
void EncodeRow(const Row& row, std::string* out);

/// Encodes a batch body (rows only, no framing header) into `out`,
/// replacing its contents.
void EncodeBatchBody(const std::vector<Row>& rows, size_t begin, size_t end,
                     std::string* out);

/// Decodes one datum from data[*offset...], advancing *offset.
Result<Datum> DecodeDatum(const std::string& data, size_t* offset);

/// Decodes one row from data[*offset...], advancing *offset.
Result<Row> DecodeRow(const std::string& data, size_t* offset);

/// Decodes `num_rows` rows from a batch body produced by EncodeBatchBody,
/// appending them to `rows`.
Status DecodeBatchBody(const std::string& data, uint32_t num_rows,
                       std::vector<Row>* rows);

/// Heap payload bytes of a datum beyond its fixed Datum slot: the string
/// length for strings, zero otherwise. Charge sites add this on top of
/// MemoryBudget::ApproxRowsBytes so wide-varchar builds don't undercharge
/// and defeat the spill trigger.
size_t DatumPayloadBytes(const Datum& value);

/// Sum of DatumPayloadBytes over every datum in `row`.
size_t RowPayloadBytes(const Row& row);

/// Sum of RowPayloadBytes over rows[begin, end).
size_t RowsPayloadBytes(const std::vector<Row>& rows, size_t begin, size_t end);

/// Sum of RowPayloadBytes over all rows.
size_t RowsPayloadBytes(const std::vector<Row>& rows);

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_SPILL_ROW_CODEC_H_
