#include "runtime/query_context.h"

namespace mppdb {

void QueryContext::Cancel() {
  // Callbacks run under cb_mu_, which also serializes Add/Remove: a racing
  // RemoveCancelCallback blocks until an in-flight callback has finished, so
  // removers may safely tear down what their callback touches.
  std::lock_guard<std::mutex> lock(cb_mu_);
  if (cancelled_.exchange(true, std::memory_order_acq_rel)) return;
  for (const auto& [handle, fn] : callbacks_) fn();
}

Status QueryContext::CheckAlive() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

bool QueryContext::ShouldStop() const {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  return has_deadline_ && std::chrono::steady_clock::now() > deadline_;
}

uint64_t QueryContext::AddCancelCallback(std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(cb_mu_);
  if (cancelled_.load(std::memory_order_acquire)) {
    lock.unlock();
    fn();
    return 0;
  }
  uint64_t handle = next_cb_handle_++;
  callbacks_.emplace(handle, std::move(fn));
  return handle;
}

void QueryContext::RemoveCancelCallback(uint64_t handle) {
  if (handle == 0) return;
  std::lock_guard<std::mutex> lock(cb_mu_);
  callbacks_.erase(handle);
}

void QueryContext::Reset() {
  std::lock_guard<std::mutex> lock(cb_mu_);
  cancelled_.store(false, std::memory_order_release);
  has_deadline_ = false;
  budget_.ResetUsage();
}

}  // namespace mppdb
