#include "runtime/propagation.h"

#include "common/macros.h"

namespace mppdb {

void PartitionPropagationHub::Push(int segment, int scan_id, Oid oid) {
  MPPDB_CHECK(segment >= 0 && static_cast<size_t>(segment) < channels_.size());
  Channel& channel = channels_[static_cast<size_t>(segment)][scan_id];
  if (channel.seen.insert(oid).second) {
    channel.ordered.push_back(oid);
  }
}

void PartitionPropagationHub::OpenChannel(int segment, int scan_id) {
  MPPDB_CHECK(segment >= 0 && static_cast<size_t>(segment) < channels_.size());
  channels_[static_cast<size_t>(segment)][scan_id];  // default-construct
}

bool PartitionPropagationHub::HasChannel(int segment, int scan_id) const {
  MPPDB_CHECK(segment >= 0 && static_cast<size_t>(segment) < channels_.size());
  return channels_[static_cast<size_t>(segment)].count(scan_id) > 0;
}

const std::vector<Oid>& PartitionPropagationHub::Selected(int segment,
                                                          int scan_id) const {
  MPPDB_CHECK(HasChannel(segment, scan_id));
  return channels_[static_cast<size_t>(segment)].at(scan_id).ordered;
}

void PartitionPropagationHub::Reset() {
  for (auto& segment : channels_) segment.clear();
}

}  // namespace mppdb
