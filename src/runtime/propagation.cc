#include "runtime/propagation.h"

#include "common/macros.h"

namespace mppdb {

PartitionPropagationHub::SegmentChannels& PartitionPropagationHub::CheckedSegment(
    int segment) {
  MPPDB_CHECK(segment >= 0 && static_cast<size_t>(segment) < segments_.size());
  SegmentChannels& channels = segments_[static_cast<size_t>(segment)];
  // Enforce the segment-scoped ownership contract (see header): an unbound
  // segment accepts any thread; a bound one only its owner.
  std::thread::id owner = channels.owner.load(std::memory_order_relaxed);
  MPPDB_CHECK(owner == std::thread::id() || owner == std::this_thread::get_id());
  return channels;
}

const PartitionPropagationHub::SegmentChannels& PartitionPropagationHub::CheckedSegment(
    int segment) const {
  return const_cast<PartitionPropagationHub*>(this)->CheckedSegment(segment);
}

void PartitionPropagationHub::BindOwner(int segment) {
  MPPDB_CHECK(segment >= 0 && static_cast<size_t>(segment) < segments_.size());
  segments_[static_cast<size_t>(segment)].owner.store(std::this_thread::get_id(),
                                                      std::memory_order_relaxed);
}

void PartitionPropagationHub::Push(int segment, int scan_id, Oid oid) {
  Channel& channel = CheckedSegment(segment).map[scan_id];
  MPPDB_CHECK(oid >= 0);
  const size_t word = static_cast<size_t>(oid) >> 6;
  const uint64_t bit = uint64_t{1} << (static_cast<size_t>(oid) & 63);
  if (word >= channel.seen_bits.size()) {
    channel.seen_bits.resize(word + 1, 0);
  }
  if ((channel.seen_bits[word] & bit) == 0) {
    channel.seen_bits[word] |= bit;
    channel.ordered.push_back(oid);
  }
}

void PartitionPropagationHub::OpenChannel(int segment, int scan_id) {
  CheckedSegment(segment).map[scan_id];  // default-construct
}

bool PartitionPropagationHub::HasChannel(int segment, int scan_id) const {
  return CheckedSegment(segment).map.count(scan_id) > 0;
}

const std::vector<Oid>& PartitionPropagationHub::Selected(int segment,
                                                          int scan_id) const {
  const SegmentChannels& channels = CheckedSegment(segment);
  auto it = channels.map.find(scan_id);
  MPPDB_CHECK(it != channels.map.end());
  return it->second.ordered;
}

void PartitionPropagationHub::PublishJoinFilter(int segment, int filter_id,
                                                JoinFilterSummary summary) {
  SegmentChannels& channels = CheckedSegment(segment);
  auto [it, inserted] = channels.filters.emplace(filter_id, std::move(summary));
  MPPDB_CHECK(inserted);  // one publication per (segment, filter) per run
}

const JoinFilterSummary* PartitionPropagationHub::FindJoinFilter(
    int segment, int filter_id) const {
  const SegmentChannels& channels = CheckedSegment(segment);
  auto it = channels.filters.find(filter_id);
  return it == channels.filters.end() ? nullptr : &it->second;
}

void PartitionPropagationHub::PublishGlobalJoinFilter(int filter_id,
                                                      JoinFilterSummary summary) {
  std::lock_guard<std::mutex> lock(global_filter_mu_);
  auto [it, inserted] = global_filters_.emplace(filter_id, std::move(summary));
  MPPDB_CHECK(inserted);  // the exchange is built (and publishes) exactly once
}

const JoinFilterSummary* PartitionPropagationHub::FindGlobalJoinFilter(
    int filter_id) const {
  std::lock_guard<std::mutex> lock(global_filter_mu_);
  auto it = global_filters_.find(filter_id);
  return it == global_filters_.end() ? nullptr : &it->second;
}

void PartitionPropagationHub::Reset() {
  for (SegmentChannels& segment : segments_) {
    segment.map.clear();
    segment.filters.clear();
    segment.owner.store(std::thread::id(), std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(global_filter_mu_);
  global_filters_.clear();
}

}  // namespace mppdb
