#ifndef MPPDB_RUNTIME_PROPAGATION_H_
#define MPPDB_RUNTIME_PROPAGATION_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/partition_scheme.h"

namespace mppdb {

/// The shared-memory channel between PartitionSelector (producer) and
/// DynamicScan (consumer) with the same scan id (paper §2.2, and the
/// partition_propagation built-in of Table 1). In a real MPP system this is
/// segment-process shared memory, which is why the optimizer forbids Motion
/// between the pair; here it is scoped per simulated segment.
class PartitionPropagationHub {
 public:
  explicit PartitionPropagationHub(int num_segments)
      : channels_(static_cast<size_t>(num_segments)) {}

  /// Pushes one selected partition OID for (segment, scan_id). Duplicate
  /// pushes (e.g. one per joining tuple) are deduplicated; first-push order
  /// is preserved so scans are deterministic.
  void Push(int segment, int scan_id, Oid oid);

  /// Marks the channel opened even if no OIDs were selected, so that a
  /// DynamicScan can distinguish "selector selected nothing" (scan nothing)
  /// from "selector never ran" (execution-order bug).
  void OpenChannel(int segment, int scan_id);

  bool HasChannel(int segment, int scan_id) const;

  /// Selected OIDs in first-push order. Channel must exist.
  const std::vector<Oid>& Selected(int segment, int scan_id) const;

  void Reset();

 private:
  struct Channel {
    std::vector<Oid> ordered;
    std::unordered_set<Oid> seen;
  };
  std::vector<std::unordered_map<int, Channel>> channels_;  // per segment
};

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_PROPAGATION_H_
