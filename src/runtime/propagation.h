#ifndef MPPDB_RUNTIME_PROPAGATION_H_
#define MPPDB_RUNTIME_PROPAGATION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/partition_scheme.h"
#include "runtime/join_filter.h"

namespace mppdb {

/// The shared-memory channel between PartitionSelector (producer) and
/// DynamicScan (consumer) with the same scan id (paper §2.2, and the
/// partition_propagation built-in of Table 1). In a real MPP system this is
/// segment-process shared memory, which is why the optimizer forbids Motion
/// between the pair; here it is scoped per simulated segment.
///
/// Thread safety: channels are segment-scoped and lock-free. The outer
/// per-segment vector is sized once at construction, and the contract — which
/// makes concurrent slice execution safe without locks — is that all accesses
/// for a given segment come from the one thread currently executing that
/// segment's slices. The parallel executor registers that thread via
/// BindOwner at slice start, and every access checks it (a violated contract
/// is a data race, so it aborts rather than limping on). Reset and BindOwner
/// are the only cross-segment calls; both happen while no slices run.
class PartitionPropagationHub {
 public:
  explicit PartitionPropagationHub(int num_segments)
      : segments_(static_cast<size_t>(num_segments)) {}

  /// Declares `this_thread` the unique owner of `segment`'s channels until
  /// the next Reset/BindOwner. Must not be called while the segment's slices
  /// are executing on another thread.
  void BindOwner(int segment);

  /// Pushes one selected partition OID for (segment, scan_id). Duplicate
  /// pushes (e.g. one per joining tuple) are deduplicated; first-push order
  /// is preserved so scans are deterministic.
  void Push(int segment, int scan_id, Oid oid);

  /// Marks the channel opened even if no OIDs were selected, so that a
  /// DynamicScan can distinguish "selector selected nothing" (scan nothing)
  /// from "selector never ran" (execution-order bug).
  void OpenChannel(int segment, int scan_id);

  bool HasChannel(int segment, int scan_id) const;

  /// Selected OIDs in first-push order. Channel must exist.
  const std::vector<Oid>& Selected(int segment, int scan_id) const;

  /// Join-filter channels: the hub generalization that carries value-level
  /// build-key summaries (runtime/join_filter.h) alongside the OID channels.
  ///
  /// Segment-local channels follow the exact ownership contract of the OID
  /// channels above: a hash join publishes its own segment's build-key
  /// summary before executing its probe child, and probe-side scans of the
  /// same segment consume it — producer and consumer share the segment's
  /// slice thread, so no lock is needed. Publish aborts on duplicate ids
  /// (each join publishes once per segment per execution).
  void PublishJoinFilter(int segment, int filter_id, JoinFilterSummary summary);

  /// Segment-local lookup; nullptr if nothing was published (e.g. runtime
  /// join filters disabled). The pointer stays valid until Reset.
  const JoinFilterSummary* FindJoinFilter(int segment, int filter_id) const;

  /// Cross-segment (global) channel, used when the consumer sits below a
  /// probe-side Motion: its rows are exchanged to other segments before
  /// joining, so only a summary merged across every build source is sound.
  /// Published exactly once per filter — by whichever thread builds the
  /// build-side Motion's exchange buffers, while every consuming slice is
  /// still blocked on (or has not yet reached) that Motion's rendezvous —
  /// and mutex-protected so late readers see a fully published summary.
  void PublishGlobalJoinFilter(int filter_id, JoinFilterSummary summary);

  /// Global lookup; nullptr if nothing was published. Safe from any slice
  /// thread; the pointer stays valid until Reset (node-based map, no
  /// rehash invalidation).
  const JoinFilterSummary* FindGlobalJoinFilter(int filter_id) const;

  /// Clears all channels and owner bindings. Single-threaded: callers must
  /// ensure no slice is executing.
  void Reset();

 private:
  struct Channel {
    std::vector<Oid> ordered;
    /// Dedup bitmap indexed by OID (OIDs are small dense integers — the
    /// catalog allocates them sequentially), one bit per OID word-packed.
    /// Replaces a per-push unordered_set probe: Push is on the selector's
    /// per-joining-tuple hot path, and the bit test is branch-predictable
    /// and allocation-free once the bitmap has grown to the table's OID
    /// range (see bench_micro_operators.cc, BM_HubPush*).
    std::vector<uint64_t> seen_bits;
  };
  struct SegmentChannels {
    std::unordered_map<int, Channel> map;
    /// Segment-local join-filter summaries by filter id. std::map for
    /// reference stability: consumers hold FindJoinFilter pointers across
    /// later publishes.
    std::map<int, JoinFilterSummary> filters;
    /// Owning thread; default (no thread) means unbound — any thread may
    /// claim by access in serial mode, where BindOwner is still called.
    std::atomic<std::thread::id> owner{std::thread::id()};
  };

  SegmentChannels& CheckedSegment(int segment);
  const SegmentChannels& CheckedSegment(int segment) const;

  std::vector<SegmentChannels> segments_;

  /// Cross-segment join-filter summaries. Guarded by global_filter_mu_;
  /// values are immutable once published.
  mutable std::mutex global_filter_mu_;
  std::map<int, JoinFilterSummary> global_filters_;
};

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_PROPAGATION_H_
