#ifndef MPPDB_RUNTIME_QUERY_CONTEXT_H_
#define MPPDB_RUNTIME_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "common/status.h"

namespace mppdb {

/// Per-query execution context: a cooperative cancellation token, an optional
/// deadline, a memory budget, and an optional fault injector. The executor
/// checks it at batch granularity in every hot loop (CheckAlive), in Motion
/// exchanges, and in ThreadPool task bodies, so Cancel() and deadline expiry
/// terminate any query — serial or parallel, row or vectorized — within one
/// batch, with a typed Status (kCancelled / kDeadlineExceeded), all threads
/// joined, and storage untouched (DML re-checks liveness before applying any
/// write, never mid-apply).
///
/// Thread safety: Cancel/CheckAlive/ShouldStop are callable from any thread.
/// Setters (deadline, budget limit, injector) must run before the query
/// starts. A context is reusable across executions; the executor resets the
/// budget usage per attempt, and cancellation is sticky until Reset().
///
/// In the serving stack (DESIGN.md §11) a context is built per statement by
/// Database::Execute from its QueryOptions — timeout, memory limit, fault
/// injector — and registered under QueryOptions::query_id for
/// Database::Cancel. Concurrent statements therefore never share a context
/// or a budget: a resource group's memory limit is parceled into each
/// admitted query's own QueryOptions::memory_limit_bytes by SessionManager,
/// and group accounting lives in the dispatcher, not here.
class QueryContext : public StopSource {
 public:
  QueryContext() = default;

  /// Requests cooperative termination and runs the registered cancel
  /// callbacks (the executor hooks its barrier wake-up here), exactly once.
  void Cancel();
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// OK while the query may keep running; kCancelled / kDeadlineExceeded
  /// once it must stop. The batch-granularity check: two loads when no
  /// deadline is set, one clock read when one is.
  Status CheckAlive() const;

  /// StopSource: lets fault-injected delays (and other interruptible waits)
  /// bail out as soon as the query is cancelled or past its deadline.
  bool ShouldStop() const override;

  MemoryBudget& budget() { return budget_; }
  const MemoryBudget& budget() const { return budget_; }

  FaultInjector* fault_injector() const { return injector_; }
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Directory for out-of-core spill files; empty means the system temp
  /// directory. Configuration like the injector, so Reset() leaves it alone.
  const std::string& spill_dir() const { return spill_dir_; }
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }

  /// Registers a callback Cancel() invokes (immediately, if already
  /// cancelled). Returns a handle for RemoveCancelCallback. The callback
  /// must not call back into this context.
  uint64_t AddCancelCallback(std::function<void()> fn);
  void RemoveCancelCallback(uint64_t handle);

  /// Clears cancellation, deadline, and budget usage for reuse. Must run
  /// while no query executes against this context.
  void Reset();

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  MemoryBudget budget_;
  FaultInjector* injector_ = nullptr;
  std::string spill_dir_;

  std::mutex cb_mu_;
  uint64_t next_cb_handle_ = 1;
  std::map<uint64_t, std::function<void()>> callbacks_;
};

}  // namespace mppdb

#endif  // MPPDB_RUNTIME_QUERY_CONTEXT_H_
