#ifndef MPPDB_COMMON_FAULT_INJECTION_H_
#define MPPDB_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/random.h"
#include "common/status.h"

namespace mppdb {

/// Something a long fault delay should watch while sleeping (a cancellation
/// token, a deadline). Lets fault_injection stay below runtime/ in the layer
/// stack: QueryContext implements this interface.
class StopSource {
 public:
  virtual ~StopSource() = default;
  /// True once the owner wants in-flight work to stop (cancelled, deadline
  /// expired). Must be cheap and thread-safe.
  virtual bool ShouldStop() const = 0;
};

/// What an armed fault point does when it fires.
enum class FaultKind {
  /// Returns kTransientIO — the query-level retry loop may cure it.
  kTransient,
  /// Returns kInternal — never retried.
  kFatal,
  /// Sleeps `delay_ms` (in 1 ms slices, watching the StopSource so a stuck
  /// peer stays cancellable), then proceeds normally. Models a slow or
  /// wedged segment rather than an erroring one.
  kDelay,
};

/// Schedule for one armed fault point.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransient;
  /// Probability that an eligible hit fires, drawn from the injector's
  /// seeded generator.
  double probability = 1.0;
  /// Only hits from this segment are eligible; -1 means every segment.
  int segment = -1;
  /// Number of eligible hits skipped before the schedule starts (arms the
  /// fault "N batches in").
  int skip_first = 0;
  /// Cap on total fires; -1 means unlimited.
  int max_fires = -1;
  /// Sleep duration for kDelay.
  int delay_ms = 0;
};

/// Deterministic, seedable fault-injection registry.
///
/// Execution code declares named fault points (kPoints below) by calling
/// Hit(point, segment) on its hot paths; tests Arm() specs against those
/// names to inject transient errors, fatal errors, or delays. With no
/// injector configured the executor skips the call entirely (one pointer
/// test), and an injector with nothing armed returns immediately, so the
/// fault-free overhead is a map lookup at worst.
///
/// Determinism: all state (including the probability generator) sits behind
/// one mutex, so a serial execution replays identically for a given seed.
/// Under parallel execution the per-thread interleaving of draws is not
/// fixed, but the draw sequence itself is, so a seed still pins the overall
/// fault density; use segment-filtered specs for exact parallel placement.
///
/// Thread safety: all methods are mutex-serialized; Hit is callable from any
/// segment worker. kDelay sleeps happen outside the mutex.
class FaultInjector {
 public:
  /// The named fault points the executor exposes, in the order they appear
  /// on a typical query's path. Tests iterate this list for matrix coverage.
  static const char* const kPoints[10];

  explicit FaultInjector(uint64_t seed) : rng_(seed), seed_(seed) {}

  /// Arms (or replaces) the spec for `point`.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);

  /// Disarms everything, clears counters, and reseeds the generator (with
  /// the construction seed if `seed` is 0).
  void Reset(uint64_t seed = 0);

  /// The executor-side entry: returns the armed fault's status (or sleeps)
  /// when the point fires, OK otherwise. `stop` may be null; a non-null stop
  /// source cuts kDelay sleeps short.
  Status Hit(const char* point, int segment, const StopSource* stop = nullptr);

  /// Eligible hits observed / faults fired at `point` (0 if never armed or
  /// never reached).
  size_t hits(const std::string& point) const;
  size_t fires(const std::string& point) const;

 private:
  struct PointState {
    FaultSpec spec;
    size_t hits = 0;
    size_t fires = 0;
    int remaining_skips = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  Random rng_;
  uint64_t seed_;
};

}  // namespace mppdb

#endif  // MPPDB_COMMON_FAULT_INJECTION_H_
