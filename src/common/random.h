#ifndef MPPDB_COMMON_RANDOM_H_
#define MPPDB_COMMON_RANDOM_H_

#include <cstdint>

namespace mppdb {

/// Deterministic 64-bit xorshift* generator. Used by workload generators and
/// property tests so that every run (and every platform) sees identical data.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace mppdb

#endif  // MPPDB_COMMON_RANDOM_H_
