#ifndef MPPDB_COMMON_STATUS_H_
#define MPPDB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace mppdb {

/// Error categories used across the library. Mirrors the RocksDB/Arrow idiom:
/// no exceptions on hot paths; fallible functions return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  // Resilience taxonomy (DESIGN.md "Failure model"): how a query died, typed
  // so callers can branch on it (retry, report, shed) without message
  // sniffing.
  /// The query was cancelled by request (Database::Cancel / QueryContext).
  kCancelled,
  /// The query's deadline expired before it finished.
  kDeadlineExceeded,
  /// A per-query resource budget (memory) was exhausted.
  kResourceExhausted,
  /// A transient I/O-style failure (e.g. an injected storage/interconnect
  /// hiccup). The only retriable code: a bounded query-level retry after
  /// idempotent teardown is expected to succeed.
  kTransientIO,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TransientIO(std::string msg) {
    return Status(StatusCode::kTransientIO, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// True for failures a query-level retry (after idempotent teardown) may
  /// cure. Cancellation, deadlines, and budget exhaustion are deliberate
  /// terminations and are never retried.
  bool IsRetriable() const { return code_ == StatusCode::kTransientIO; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error holder (StatusOr). Construct from a value or a non-OK
/// Status; check ok() before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    // A Result constructed from Status must carry an error; an OK status here
    // is a programming bug and is normalized to kInternal.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace mppdb

#endif  // MPPDB_COMMON_STATUS_H_
