#include "common/thread_pool.h"

#include <chrono>

#include "common/macros.h"

namespace mppdb {

ThreadPool::ThreadPool(int num_threads) {
  MPPDB_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(TaskFn fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  TaskFn wrapped = [fn = std::move(fn), done = std::move(done)]() mutable {
    fn();
    done.set_value();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPPDB_CHECK(!stopping_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskFn task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// --- MorselScheduler --------------------------------------------------------

namespace {
/// Worker identity of the current thread: which scheduler it belongs to (if
/// any) and its index there. One pair of thread-locals supports multiple
/// scheduler instances (tests create private pools next to the shared one).
thread_local const MorselScheduler* tl_scheduler = nullptr;
thread_local int tl_worker_index = -1;
}  // namespace

MorselScheduler::MorselScheduler(int num_workers) {
  MPPDB_CHECK(num_workers > 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i]() { WorkerLoop(i); });
  }
}

MorselScheduler::~MorselScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    ++work_epoch_;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

int MorselScheduler::CurrentWorker() const {
  return tl_scheduler == this ? tl_worker_index : -1;
}

void MorselScheduler::Submit(TaskFn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPPDB_CHECK(!stopping_);
    global_.push_back(QueuedTask{std::move(fn), nullptr});
  }
  NotifyWork();
}

std::vector<uint64_t> MorselScheduler::BusyNanos() const {
  std::vector<uint64_t> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    out.push_back(worker->busy_ns.load(std::memory_order_relaxed));
  }
  return out;
}

void MorselScheduler::ResetBusyTime() {
  for (auto& worker : workers_) {
    worker->busy_ns.store(0, std::memory_order_relaxed);
  }
}

void MorselScheduler::NotifyWork() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++work_epoch_;
  }
  cv_.notify_all();
}

void MorselScheduler::RunTask(QueuedTask task, int worker) {
  if (worker >= 0) {
    const auto start = std::chrono::steady_clock::now();
    task.fn();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    workers_[static_cast<size_t>(worker)]->busy_ns.fetch_add(
        static_cast<uint64_t>(ns), std::memory_order_relaxed);
  } else {
    task.fn();
  }
  if (task.group != nullptr) {
    TaskGroup* group = task.group;
    // Notify under the lock: once pending_ hits 0 a thread in Wait may
    // return and destroy the group, so the cv must not be touched after the
    // unlock.
    std::lock_guard<std::mutex> lock(group->mu_);
    MPPDB_CHECK(group->pending_ > 0);
    if (--group->pending_ == 0) group->cv_.notify_all();
  }
}

bool MorselScheduler::PopLocal(int worker, QueuedTask* out) {
  Worker& me = *workers_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(me.mu);
  if (me.deque.empty()) return false;
  *out = std::move(me.deque.back());
  me.deque.pop_back();
  return true;
}

bool MorselScheduler::PopGlobal(QueuedTask* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (global_.empty()) return false;
  *out = std::move(global_.front());
  global_.pop_front();
  return true;
}

bool MorselScheduler::Steal(int thief, QueuedTask* out) {
  const int n = num_workers();
  for (int offset = 1; offset < n; ++offset) {
    const int victim_index = (thief + offset) % n;
    Worker& victim = *workers_[static_cast<size_t>(victim_index)];
    std::vector<QueuedTask> loot;
    {
      // try_lock: a contended victim is being drained by someone already;
      // move on rather than convoy behind them.
      std::unique_lock<std::mutex> lock(victim.mu, std::try_to_lock);
      if (!lock.owns_lock() || victim.deque.empty()) continue;
      // Steal-half from the front: the oldest ranges, leaving the victim the
      // recent (cache-warm) back of its deque. Both halves stay sequential.
      const size_t take = (victim.deque.size() + 1) / 2;
      loot.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(victim.deque.front()));
        victim.deque.pop_front();
      }
    }
    *out = std::move(loot.front());
    if (loot.size() > 1) {
      Worker& me = *workers_[static_cast<size_t>(thief)];
      {
        std::lock_guard<std::mutex> lock(me.mu);
        for (size_t i = 1; i < loot.size(); ++i) {
          me.deque.push_back(std::move(loot[i]));
        }
      }
      NotifyWork();  // the re-planted tasks are stealable in turn
    }
    return true;
  }
  return false;
}

void MorselScheduler::WorkerLoop(int index) {
  tl_scheduler = this;
  tl_worker_index = index;
  for (;;) {
    // Capture the epoch BEFORE scanning: any enqueue after this point bumps
    // it, so the wait below falls through and rescans instead of sleeping on
    // work the scan raced past.
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ && global_.empty()) return;
      epoch = work_epoch_;
    }
    QueuedTask task;
    if (PopLocal(index, &task) || PopGlobal(&task) || Steal(index, &task)) {
      RunTask(std::move(task), index);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, epoch]() { return stopping_ || work_epoch_ != epoch; });
  }
}

MorselScheduler::TaskGroup::~TaskGroup() {
  // A group abandoned with tasks still pending would leave them referencing a
  // dead object; Wait() before destruction is part of the contract.
  std::lock_guard<std::mutex> lock(mu_);
  MPPDB_CHECK(pending_ == 0);
}

void MorselScheduler::TaskGroup::Spawn(TaskFn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  const int worker = scheduler_->CurrentWorker();
  if (worker >= 0) {
    Worker& me = *scheduler_->workers_[static_cast<size_t>(worker)];
    std::lock_guard<std::mutex> lock(me.mu);
    me.deque.push_back(QueuedTask{std::move(fn), this});
  } else {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    scheduler_->global_.push_back(QueuedTask{std::move(fn), this});
  }
  scheduler_->NotifyWork();
}

void MorselScheduler::TaskGroup::Wait() {
  const int worker = scheduler_->CurrentWorker();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    // Help with local work first. Every task in this worker's deque is a
    // group morsel (this group's, or one stolen from a peer) and morsels
    // never wait on anything, so helping always makes progress.
    QueuedTask task;
    if (worker >= 0 && scheduler_->PopLocal(worker, &task)) {
      scheduler_->RunTask(std::move(task), worker);
      continue;
    }
    // Own deque drained: the stragglers were stolen and are running (or
    // queued) elsewhere. Sleep until the last one completes.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return pending_ == 0; });
    return;
  }
}

}  // namespace mppdb
