#include "common/thread_pool.h"

#include "common/macros.h"

namespace mppdb {

ThreadPool::ThreadPool(int num_threads) {
  MPPDB_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPPDB_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mppdb
