#include "common/memory_budget.h"

namespace mppdb {

std::string MemoryBudget::DebugString() const {
  if (!limited()) return "unlimited";
  return std::to_string(used()) + "/" + std::to_string(limit_) +
         " bytes (peak " + std::to_string(peak()) + ")";
}

}  // namespace mppdb
