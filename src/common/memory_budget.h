#ifndef MPPDB_COMMON_MEMORY_BUDGET_H_
#define MPPDB_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <string>

namespace mppdb {

/// A per-query memory accountant. Operators that materialize significant
/// state (hash-join/agg build tables, sort buffers, motion receive queues,
/// join-filter summaries) charge an estimate of their footprint before
/// allocating; when a limit is set and a charge would exceed it, TryCharge
/// refuses and the operator either sheds the allocation (advisory state like
/// join-filter summaries and zone-map rebuilds) or fails the query with
/// kResourceExhausted (mandatory state).
///
/// Accounting is estimate-based, not allocator-hooked: charges use the cheap
/// O(1) row-footprint model below (ApproxRowsBytes), which ignores string
/// payloads — the goal is a deterministic, orderable budget signal, not
/// byte-exact RSS. A default-constructed budget is unlimited and charge-free
/// (a single branch), so queries without a budget pay nothing.
///
/// Thread safety: TryCharge/Release are lock-free atomics, callable from any
/// segment worker. ResetUsage/set_limit must run while no query executes.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  /// 0 means unlimited.
  size_t limit() const { return limit_; }
  bool limited() const { return limit_ != 0; }
  void set_limit(size_t limit_bytes) { limit_ = limit_bytes; }

  /// Charges `bytes` against the budget. Returns false — leaving usage
  /// unchanged — if the charge would exceed the limit. Unlimited budgets
  /// always succeed without touching the counters.
  bool TryCharge(size_t bytes) {
    if (!limited()) return true;
    size_t prior = used_.fetch_add(bytes, std::memory_order_relaxed);
    if (prior + bytes > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    // Peak is monotone; racing updaters settle on the max.
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (prior + bytes > peak &&
           !peak_.compare_exchange_weak(peak, prior + bytes,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Returns a previously charged amount (scoped allocations like sort
  /// buffers; long-lived build tables are released by ResetUsage instead).
  /// Releasing more than is currently charged is a caller bug — it would
  /// wrap the unsigned counter and turn the budget into a no-op — so debug
  /// builds assert and release builds clamp the counter to zero.
  void Release(size_t bytes) {
    if (!limited()) return;
    size_t prior = used_.fetch_sub(bytes, std::memory_order_relaxed);
    assert(prior >= bytes && "MemoryBudget::Release underflow");
    if (prior < bytes) used_.store(0, std::memory_order_relaxed);
  }

  /// Clears usage (not the limit) between executions/retry attempts.
  void ResetUsage() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// "used/limit bytes (peak N)" or "unlimited", for error messages.
  std::string DebugString() const;

 private:
  size_t limit_ = 0;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// O(1) footprint estimate for `num_rows` materialized rows of `width`
/// columns: the Datum payloads plus per-row vector overhead. Strings count
/// their Datum slot only (see MemoryBudget class comment).
inline size_t ApproxRowsBytes(size_t num_rows, size_t width) {
  constexpr size_t kDatumBytes = 24;   // tagged value slot
  constexpr size_t kPerRowBytes = 32;  // row vector header + heap block
  return num_rows * (width * kDatumBytes + kPerRowBytes);
}

}  // namespace mppdb

#endif  // MPPDB_COMMON_MEMORY_BUDGET_H_
