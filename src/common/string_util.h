#ifndef MPPDB_COMMON_STRING_UTIL_H_
#define MPPDB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace mppdb {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cases ASCII letters in `s`.
std::string ToLower(const std::string& s);

/// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Repeats `s` `n` times.
std::string Repeat(const std::string& s, size_t n);

}  // namespace mppdb

#endif  // MPPDB_COMMON_STRING_UTIL_H_
