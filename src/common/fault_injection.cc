#include "common/fault_injection.h"

#include <chrono>
#include <thread>

namespace mppdb {

const char* const FaultInjector::kPoints[10] = {
    "storage.scan_chunk", "motion.send", "motion.recv", "hub.push",
    "joinfilter.publish", "exec.batch",  "alloc.budget", "spill.open",
    "spill.write",        "spill.read",
};

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState state;
  state.spec = spec;
  state.remaining_skips = spec.skip_first;
  points_[point] = state;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
}

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  if (seed != 0) seed_ = seed;
  rng_ = Random(seed_);
}

Status FaultInjector::Hit(const char* point, int segment,
                          const StopSource* stop) {
  FaultKind kind;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& state = it->second;
    if (state.spec.segment >= 0 && state.spec.segment != segment) {
      return Status::OK();
    }
    ++state.hits;
    if (state.remaining_skips > 0) {
      --state.remaining_skips;
      return Status::OK();
    }
    if (state.spec.max_fires >= 0 &&
        state.fires >= static_cast<size_t>(state.spec.max_fires)) {
      return Status::OK();
    }
    if (state.spec.probability < 1.0 && !rng_.Bernoulli(state.spec.probability)) {
      return Status::OK();
    }
    ++state.fires;
    kind = state.spec.kind;
    delay_ms = state.spec.delay_ms;
  }
  const std::string where =
      std::string(point) + " (segment " + std::to_string(segment) + ")";
  switch (kind) {
    case FaultKind::kTransient:
      return Status::TransientIO("injected transient fault at " + where);
    case FaultKind::kFatal:
      return Status::Internal("injected fatal fault at " + where);
    case FaultKind::kDelay: {
      // Sleep in short slices outside the mutex so a cancelled or expired
      // query does not stay wedged behind a simulated stall.
      const auto end = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(delay_ms);
      while (std::chrono::steady_clock::now() < end) {
        if (stop != nullptr && stop->ShouldStop()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

size_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

size_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace mppdb
