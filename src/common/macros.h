#ifndef MPPDB_COMMON_MACROS_H_
#define MPPDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Fatal invariant check. Used for programming errors that cannot be reported
/// through Status (e.g. broken internal invariants); aborts with location.
#define MPPDB_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MPPDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define MPPDB_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::mppdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define MPPDB_CONCAT_IMPL(a, b) a##b
#define MPPDB_CONCAT(a, b) MPPDB_CONCAT_IMPL(a, b)

/// Evaluates a Result<T>-returning expression; on error returns its Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define MPPDB_ASSIGN_OR_RETURN(lhs, expr)                            \
  MPPDB_ASSIGN_OR_RETURN_IMPL(MPPDB_CONCAT(_result_, __LINE__), lhs, \
                              expr)

#define MPPDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#endif  // MPPDB_COMMON_MACROS_H_
