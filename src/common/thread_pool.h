#ifndef MPPDB_COMMON_THREAD_POOL_H_
#define MPPDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mppdb {

/// A move-only type-erased `void()` callable. Tasks routinely capture
/// move-only state (promises, result slots, materialized row batches), which
/// `std::function` cannot hold without copies — every submission used to pay
/// a callable copy through std::function + std::packaged_task.
class TaskFn {
 public:
  TaskFn() = default;
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, TaskFn>>>
  TaskFn(F&& fn)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(fn))) {}

  TaskFn(TaskFn&&) = default;
  TaskFn& operator=(TaskFn&&) = default;
  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  void operator()() { impl_->Call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void Call() = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F&& f) : fn(std::move(f)) {}
    explicit Impl(const F& f) : fn(f) {}
    void Call() override { fn(); }
    F fn;
  };
  std::unique_ptr<Base> impl_;
};

/// A fixed-size worker pool with a FIFO task queue. Workers start in the
/// constructor and join in the destructor (after draining queued tasks).
/// Tasks must not block on each other; use MorselScheduler below for task
/// graphs with dependencies (its tasks suspend by returning, not by
/// blocking).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future resolves when it has run. `fn` must not throw.
  /// Move-only: the callable is moved to the queue and into the worker, never
  /// copied.
  std::future<void> Submit(TaskFn fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<TaskFn> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The morsel-driven work-stealing scheduler (Leis et al., "Morsel-Driven
/// Parallelism"): a pool sized to the hardware, not to the plan, onto which
/// the executor schedules segment slices and fixed-size scan morsels.
///
/// Structure:
///  * One global injection queue for external submissions (segment tasks,
///    Motion resume continuations) — FIFO, mutex-protected.
///  * One deque per worker for TaskGroup morsels. The owner pushes and pops
///    at the back (LIFO — the most recently spawned range is the hottest in
///    cache); idle workers steal half a victim's deque from the front (the
///    oldest, coldest ranges), keeping each side's ranges sequential.
///  * Workers prefer their own deque, then the global queue, then stealing.
///
/// Scheduled tasks must never block on other tasks: a task that reaches an
/// unsatisfied dependency (e.g. a Motion whose peers have not arrived)
/// records a continuation and returns, freeing the worker. That is what makes
/// the pool size independent of the plan — any number of segments and
/// morsels make progress on one worker. TaskGroup::Wait is the one
/// synchronization point, and it waits productively: it drains the caller's
/// own deque (running stolen-back morsels) before sleeping, and group tasks
/// themselves never wait, so the group always drains.
class MorselScheduler {
 public:
  /// Spawns `num_workers` threads (> 0). A size of
  /// std::thread::hardware_concurrency() is the intended default; callers
  /// with an explicit cap pass that instead.
  explicit MorselScheduler(int num_workers);
  ~MorselScheduler();

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling thread within this scheduler's pool, -1 when called
  /// from outside it.
  int CurrentWorker() const;

  /// Enqueues an independent task on the global injection queue. Callable
  /// from any thread, including workers (a Motion build resuming its waiter
  /// segments does exactly that).
  void Submit(TaskFn fn);

  /// Per-worker nanoseconds spent running tasks since construction or the
  /// last ResetBusyTime — the raw material for the skew experiments in
  /// bench_parallel_speedup.
  std::vector<uint64_t> BusyNanos() const;
  void ResetBusyTime();

  /// A fork-join scope for one slice's morsels. Spawn from the owning task,
  /// then Wait; Wait returns once every spawned task has finished (on any
  /// worker).
  class TaskGroup {
   public:
    explicit TaskGroup(MorselScheduler* scheduler) : scheduler_(scheduler) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Registers one task. From a worker thread the task goes on that
    /// worker's own deque (stealable by idle peers); from outside the pool it
    /// goes on the global queue.
    void Spawn(TaskFn fn);

    /// Runs and/or waits until all spawned tasks have finished. A worker
    /// drains its own deque first — under no contention the spawner runs its
    /// own morsels back-to-back in LIFO order with zero cross-thread traffic.
    void Wait();

   private:
    friend class MorselScheduler;
    MorselScheduler* scheduler_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t pending_ = 0;
  };

 private:
  /// A queued task with its group (null for independent Submit tasks).
  struct QueuedTask {
    TaskFn fn;
    TaskGroup* group = nullptr;
  };
  struct Worker {
    std::mutex mu;
    std::deque<QueuedTask> deque;
    /// Written by the owning worker only; read by BusyNanos from any thread.
    std::atomic<uint64_t> busy_ns{0};
    std::thread thread;
  };

  void WorkerLoop(int index);
  /// Runs `task`, accounting busy time to `worker` (negative: external
  /// thread, no accounting) and completing its group if any.
  void RunTask(QueuedTask task, int worker);
  /// Pops the back of `worker`'s own deque. Returns false when empty.
  bool PopLocal(int worker, QueuedTask* out);
  bool PopGlobal(QueuedTask* out);
  /// Steal-half from the first victim with work: takes the front (oldest)
  /// half of the victim's deque, keeps one task to run and plants the rest in
  /// the thief's own deque (where they remain stealable).
  bool Steal(int thief, QueuedTask* out);
  void NotifyWork();

  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> global_;
  /// Bumped on every enqueue; sleeping workers re-scan when it moves, which
  /// closes the check-queues-then-sleep race without timed polling.
  uint64_t work_epoch_ = 0;
  bool stopping_ = false;
};

}  // namespace mppdb

#endif  // MPPDB_COMMON_THREAD_POOL_H_
