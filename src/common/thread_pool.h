#ifndef MPPDB_COMMON_THREAD_POOL_H_
#define MPPDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mppdb {

/// A fixed-size worker pool with a FIFO task queue. Workers start in the
/// constructor and join in the destructor (after draining queued tasks).
///
/// Used by the parallel executor to run one plan slice per segment. Tasks may
/// block on each other (the executor's Motion barriers do), so callers that
/// submit mutually-rendezvousing task groups must not submit more blocking
/// tasks than there are workers — see Executor::Options::max_workers for how
/// the executor sizes the pool to make that safe.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future resolves when it has run. `fn` must not throw.
  std::future<void> Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mppdb

#endif  // MPPDB_COMMON_THREAD_POOL_H_
