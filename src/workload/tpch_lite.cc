#include "workload/tpch_lite.h"

#include "common/macros.h"
#include "common/random.h"
#include "types/date.h"

namespace mppdb {
namespace workload {

int LineitemPartitionCount(LineitemPartitioning partitioning) {
  switch (partitioning) {
    case LineitemPartitioning::kNone:
      return 0;
    case LineitemPartitioning::kBiMonthly42:
      return 42;
    case LineitemPartitioning::kMonthly84:
      return 84;
    case LineitemPartitioning::kBiWeekly169:
      return 169;
    case LineitemPartitioning::kWeekly361:
      return 361;
  }
  return 0;
}

const char* LineitemPartitioningName(LineitemPartitioning partitioning) {
  switch (partitioning) {
    case LineitemPartitioning::kNone:
      return "unpartitioned";
    case LineitemPartitioning::kBiMonthly42:
      return "each part represents 2 months";
    case LineitemPartitioning::kMonthly84:
      return "partitioned monthly";
    case LineitemPartitioning::kBiWeekly169:
      return "partitioned bi-weekly";
    case LineitemPartitioning::kWeekly361:
      return "partitioned weekly";
  }
  return "?";
}

Status CreateAndLoadLineitem(Database* db, const TpchConfig& config,
                             LineitemPartitioning partitioning,
                             const std::string& table_name) {
  Schema schema({{"l_orderkey", TypeId::kInt64},
                 {"l_suppkey", TypeId::kInt64},
                 {"l_shipdate", TypeId::kDate},
                 {"l_quantity", TypeId::kDouble},
                 {"l_extendedprice", TypeId::kDouble},
                 {"l_discount", TypeId::kDouble}});

  const int32_t first_day = date::FromYMD(config.start_year, 1, 1);
  const int32_t last_day = date::FromYMD(config.start_year + config.years, 1, 1);
  const int total_days = last_day - first_day;

  if (partitioning == LineitemPartitioning::kNone) {
    MPPDB_RETURN_IF_ERROR(
        db->CreateTable(table_name, schema, TableDistribution::kHashed, {0}).status());
  } else {
    int parts = LineitemPartitionCount(partitioning);
    int width = (total_days + parts - 1) / parts;  // cover the full span
    MPPDB_RETURN_IF_ERROR(
        db->CreatePartitionedTable(
              table_name, schema, TableDistribution::kHashed, {0},
              {{2, PartitionMethod::kRange}},
              {partition_bounds::DateRanges(config.start_year, 1, 1, parts, width)})
            .status());
  }

  Random rng(config.seed);
  std::vector<Row> rows;
  rows.reserve(config.rows);
  for (size_t i = 0; i < config.rows; ++i) {
    int32_t ship = first_day + static_cast<int32_t>(rng.Uniform(
                                   static_cast<uint64_t>(total_days)));
    double quantity = static_cast<double>(1 + rng.Uniform(50));
    double price = 900.0 + rng.NextDouble() * 104000.0;
    rows.push_back({Datum::Int64(static_cast<int64_t>(i / 4) + 1),
                    Datum::Int64(static_cast<int64_t>(rng.Uniform(1000)) + 1),
                    Datum::Date(ship), Datum::Double(quantity), Datum::Double(price),
                    Datum::Double(rng.NextDouble() * 0.1)});
  }
  return db->Load(table_name, rows);
}

}  // namespace workload
}  // namespace mppdb
