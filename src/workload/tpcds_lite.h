#ifndef MPPDB_WORKLOAD_TPCDS_LITE_H_
#define MPPDB_WORKLOAD_TPCDS_LITE_H_

#include <string>
#include <vector>

#include "db/database.h"

namespace mppdb {
namespace workload {

/// Scaled-down TPC-DS-style star schema (paper §4.3): seven partitioned fact
/// tables (store_sales, web_sales, catalog_sales, store_returns, web_returns,
/// catalog_returns, inventory) partitioned monthly on their date surrogate
/// key, plus dimensions (date_dim, item, customer, store, warehouse). Date
/// surrogate keys are days-since-epoch integers so that monthly integer
/// ranges align with the calendar.
struct TpcdsConfig {
  int start_year = 2002;
  int months = 24;
  /// Base row count; fact tables scale from it (store_sales = 2x, etc.).
  size_t base_rows = 4000;
  int items = 400;
  int customers = 500;
  int stores = 10;
  int warehouses = 5;
  uint64_t seed = 99;
};

/// Names of the seven partitioned fact tables, in the paper's Fig. 16 order.
const std::vector<std::string>& TpcdsFactTables();

/// Creates and loads the full schema into `db`.
Status CreateAndLoadTpcds(Database* db, const TpcdsConfig& config);

/// One workload query: a name, the SQL text, and the runtime class used to
/// bucket Fig. 17 ("short" / "medium" / "long" measured empirically).
struct WorkloadQuery {
  std::string name;
  std::string sql;
};

/// The query-template suite driving Table 3, Fig. 16, and Fig. 17: a mix of
/// static range pruning, join-induced dynamic pruning (explicit joins and IN
/// subqueries), multi-dimension star joins, aggregations without pruning
/// opportunities, and adversarial cases where cost-based choices can lose
/// pruning (the paper's 6% bucket).
std::vector<WorkloadQuery> TpcdsQueries(const TpcdsConfig& config);

}  // namespace workload
}  // namespace mppdb

#endif  // MPPDB_WORKLOAD_TPCDS_LITE_H_
