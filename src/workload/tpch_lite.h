#ifndef MPPDB_WORKLOAD_TPCH_LITE_H_
#define MPPDB_WORKLOAD_TPCH_LITE_H_

#include <string>

#include "db/database.h"

namespace mppdb {
namespace workload {

/// Partitioning variants of the paper's Table 2 (plus unpartitioned).
enum class LineitemPartitioning {
  kNone,
  kBiMonthly42,   // each part represents 2 months
  kMonthly84,     // partitioned monthly
  kBiWeekly169,   // partitioned bi-weekly
  kWeekly361,     // partitioned weekly
};

/// Number of leaf partitions for a variant (0 for kNone). Matches the paper's
/// Table 2 row labels.
int LineitemPartitionCount(LineitemPartitioning partitioning);

const char* LineitemPartitioningName(LineitemPartitioning partitioning);

/// TPC-H-style lineitem generator configuration: 7 years of ship dates, a
/// deterministic seed, and a row count scaled to the experiment.
struct TpchConfig {
  int start_year = 1998;
  int years = 7;
  size_t rows = 100000;
  uint64_t seed = 20140622;
};

/// Creates `table_name` with schema
///   (l_orderkey BIGINT, l_suppkey BIGINT, l_shipdate DATE,
///    l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE)
/// hash-distributed on l_orderkey, range-partitioned on l_shipdate per the
/// variant, and loads `config.rows` deterministic rows.
Status CreateAndLoadLineitem(Database* db, const TpchConfig& config,
                             LineitemPartitioning partitioning,
                             const std::string& table_name);

}  // namespace workload
}  // namespace mppdb

#endif  // MPPDB_WORKLOAD_TPCH_LITE_H_
