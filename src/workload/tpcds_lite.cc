#include "workload/tpcds_lite.h"

#include "common/macros.h"
#include "common/random.h"
#include "types/date.h"

namespace mppdb {
namespace workload {

namespace {

// Month-aligned integer ranges over date surrogate keys.
std::vector<PartitionBound> MonthlySkBounds(int start_year, int months) {
  std::vector<PartitionBound> bounds;
  int year = start_year, month = 1;
  for (int i = 0; i < months; ++i) {
    int next_year = year, next_month = month + 1;
    if (next_month > 12) {
      next_month = 1;
      ++next_year;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "m%04d_%02d", year, month);
    bounds.push_back(PartitionBound::Range(
        Datum::Int64(date::FromYMD(year, month, 1)),
        Datum::Int64(date::FromYMD(next_year, next_month, 1)), name));
    year = next_year;
    month = next_month;
  }
  return bounds;
}

Status CreateFact(Database* db, const std::string& name,
                  const std::vector<Column>& columns, const TpcdsConfig& config) {
  // Column 0 is always the date surrogate key (partitioning key); column 1
  // the item key (distribution key).
  return db
      ->CreatePartitionedTable(name, Schema(columns), TableDistribution::kHashed, {1},
                               {{0, PartitionMethod::kRange}},
                               {MonthlySkBounds(config.start_year, config.months)})
      .status();
}

}  // namespace

const std::vector<std::string>& TpcdsFactTables() {
  static const auto* kTables = new std::vector<std::string>{
      "store_sales",   "web_sales",   "catalog_sales", "store_returns",
      "web_returns",   "catalog_returns", "inventory"};
  return *kTables;
}

Status CreateAndLoadTpcds(Database* db, const TpcdsConfig& config) {
  // --- Dimensions -----------------------------------------------------------
  MPPDB_RETURN_IF_ERROR(db->CreateTable("date_dim",
                                        Schema({{"d_date_sk", TypeId::kInt64},
                                                {"d_year", TypeId::kInt64},
                                                {"d_moy", TypeId::kInt64},
                                                {"d_dom", TypeId::kInt64},
                                                {"d_dow", TypeId::kInt64},
                                                {"d_quarter", TypeId::kInt64}}),
                                        TableDistribution::kHashed, {0})
                            .status());
  MPPDB_RETURN_IF_ERROR(db->CreateTable("item",
                                        Schema({{"i_item_sk", TypeId::kInt64},
                                                {"i_category", TypeId::kString},
                                                {"i_current_price", TypeId::kDouble}}),
                                        TableDistribution::kHashed, {0})
                            .status());
  MPPDB_RETURN_IF_ERROR(db->CreateTable("customer",
                                        Schema({{"c_customer_sk", TypeId::kInt64},
                                                {"c_state", TypeId::kString},
                                                {"c_birth_year", TypeId::kInt64}}),
                                        TableDistribution::kHashed, {0})
                            .status());
  MPPDB_RETURN_IF_ERROR(db->CreateTable("store",
                                        Schema({{"s_store_sk", TypeId::kInt64},
                                                {"s_state", TypeId::kString}}),
                                        TableDistribution::kHashed, {0})
                            .status());
  MPPDB_RETURN_IF_ERROR(db->CreateTable("warehouse",
                                        Schema({{"w_warehouse_sk", TypeId::kInt64},
                                                {"w_state", TypeId::kString}}),
                                        TableDistribution::kHashed, {0})
                            .status());

  // --- Facts ----------------------------------------------------------------
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "store_sales",
                                   {{"ss_sold_date_sk", TypeId::kInt64},
                                    {"ss_item_sk", TypeId::kInt64},
                                    {"ss_customer_sk", TypeId::kInt64},
                                    {"ss_store_sk", TypeId::kInt64},
                                    {"ss_quantity", TypeId::kInt64},
                                    {"ss_sales_price", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "web_sales",
                                   {{"ws_sold_date_sk", TypeId::kInt64},
                                    {"ws_item_sk", TypeId::kInt64},
                                    {"ws_customer_sk", TypeId::kInt64},
                                    {"ws_quantity", TypeId::kInt64},
                                    {"ws_sales_price", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "catalog_sales",
                                   {{"cs_sold_date_sk", TypeId::kInt64},
                                    {"cs_item_sk", TypeId::kInt64},
                                    {"cs_customer_sk", TypeId::kInt64},
                                    {"cs_quantity", TypeId::kInt64},
                                    {"cs_sales_price", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "store_returns",
                                   {{"sr_returned_date_sk", TypeId::kInt64},
                                    {"sr_item_sk", TypeId::kInt64},
                                    {"sr_customer_sk", TypeId::kInt64},
                                    {"sr_return_amt", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "web_returns",
                                   {{"wr_returned_date_sk", TypeId::kInt64},
                                    {"wr_item_sk", TypeId::kInt64},
                                    {"wr_customer_sk", TypeId::kInt64},
                                    {"wr_return_amt", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "catalog_returns",
                                   {{"cr_returned_date_sk", TypeId::kInt64},
                                    {"cr_item_sk", TypeId::kInt64},
                                    {"cr_customer_sk", TypeId::kInt64},
                                    {"cr_return_amt", TypeId::kDouble}},
                                   config));
  MPPDB_RETURN_IF_ERROR(CreateFact(db, "inventory",
                                   {{"inv_date_sk", TypeId::kInt64},
                                    {"inv_item_sk", TypeId::kInt64},
                                    {"inv_warehouse_sk", TypeId::kInt64},
                                    {"inv_quantity_on_hand", TypeId::kInt64}},
                                   config));

  // --- Data -----------------------------------------------------------------
  Random rng(config.seed);
  const int32_t first_sk = date::FromYMD(config.start_year, 1, 1);
  int end_year = config.start_year + config.months / 12;
  int end_month = 1 + config.months % 12;
  if (end_month > 12) {
    end_month -= 12;
    ++end_year;
  }
  const int32_t end_sk = date::FromYMD(end_year, end_month, 1);
  const int span = end_sk - first_sk;

  std::vector<Row> dates;
  for (int32_t sk = first_sk; sk < end_sk; ++sk) {
    int y, m, d;
    date::ToYMD(sk, &y, &m, &d);
    dates.push_back({Datum::Int64(sk), Datum::Int64(y), Datum::Int64(m),
                     Datum::Int64(d), Datum::Int64(((sk % 7) + 7) % 7),
                     Datum::Int64((m - 1) / 3 + 1)});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("date_dim", dates));

  static const char* kCategories[] = {"books", "electronics", "home",
                                      "sports", "apparel"};
  std::vector<Row> items;
  for (int i = 1; i <= config.items; ++i) {
    items.push_back({Datum::Int64(i), Datum::String(kCategories[rng.Uniform(5)]),
                     Datum::Double(1.0 + rng.NextDouble() * 200.0)});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("item", items));

  static const char* kStates[] = {"CA", "WA", "OR", "NY", "TX", "UT"};
  std::vector<Row> customers;
  for (int i = 1; i <= config.customers; ++i) {
    customers.push_back({Datum::Int64(i), Datum::String(kStates[rng.Uniform(6)]),
                         Datum::Int64(1940 + static_cast<int64_t>(rng.Uniform(60)))});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("customer", customers));

  std::vector<Row> stores;
  for (int i = 1; i <= config.stores; ++i) {
    stores.push_back({Datum::Int64(i), Datum::String(kStates[rng.Uniform(6)])});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("store", stores));

  std::vector<Row> warehouses;
  for (int i = 1; i <= config.warehouses; ++i) {
    warehouses.push_back({Datum::Int64(i), Datum::String(kStates[rng.Uniform(6)])});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("warehouse", warehouses));

  auto random_sk = [&]() {
    return Datum::Int64(first_sk + static_cast<int64_t>(
                                       rng.Uniform(static_cast<uint64_t>(span))));
  };
  auto random_item = [&]() {
    return Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(
                                static_cast<uint64_t>(config.items))));
  };
  auto random_customer = [&]() {
    return Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(
                                static_cast<uint64_t>(config.customers))));
  };

  std::vector<Row> rows;
  rows.clear();
  for (size_t i = 0; i < config.base_rows * 2; ++i) {
    rows.push_back({random_sk(), random_item(), random_customer(),
                    Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(
                                         static_cast<uint64_t>(config.stores)))),
                    Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(100))),
                    Datum::Double(rng.NextDouble() * 300.0)});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("store_sales", rows));

  rows.clear();
  for (size_t i = 0; i < config.base_rows; ++i) {
    rows.push_back({random_sk(), random_item(), random_customer(),
                    Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(100))),
                    Datum::Double(rng.NextDouble() * 300.0)});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("web_sales", rows));

  rows.clear();
  for (size_t i = 0; i < config.base_rows; ++i) {
    rows.push_back({random_sk(), random_item(), random_customer(),
                    Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(100))),
                    Datum::Double(rng.NextDouble() * 300.0)});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("catalog_sales", rows));

  for (const char* returns_table : {"store_returns", "web_returns",
                                    "catalog_returns"}) {
    rows.clear();
    for (size_t i = 0; i < config.base_rows / 2; ++i) {
      rows.push_back({random_sk(), random_item(), random_customer(),
                      Datum::Double(rng.NextDouble() * 150.0)});
    }
    MPPDB_RETURN_IF_ERROR(db->Load(returns_table, rows));
  }

  rows.clear();
  for (size_t i = 0; i < config.base_rows; ++i) {
    rows.push_back({random_sk(), random_item(),
                    Datum::Int64(1 + static_cast<int64_t>(rng.Uniform(
                                         static_cast<uint64_t>(config.warehouses)))),
                    Datum::Int64(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  MPPDB_RETURN_IF_ERROR(db->Load("inventory", rows));

  return Status::OK();
}

std::vector<WorkloadQuery> TpcdsQueries(const TpcdsConfig& config) {
  auto sk = [&](int year, int month, int day) {
    return std::to_string(date::FromYMD(year, month, day));
  };
  const int y0 = config.start_year;      // 2002
  const int y1 = config.start_year + 1;  // 2003

  std::vector<WorkloadQuery> queries;
  auto add = [&](const std::string& name, const std::string& sql) {
    queries.push_back({name, sql});
  };

  // --- Static partition elimination ----------------------------------------
  add("q01_ss_static_quarter",
      "SELECT count(*), sum(ss_sales_price) FROM store_sales "
      "WHERE ss_sold_date_sk BETWEEN " + sk(y1, 10, 1) + " AND " + sk(y1, 12, 31));
  add("q02_ws_static_month",
      "SELECT avg(ws_sales_price) FROM web_sales "
      "WHERE ws_sold_date_sk >= " + sk(y1, 6, 1) +
      " AND ws_sold_date_sk < " + sk(y1, 7, 1));
  add("q03_cs_static_halfopen",
      "SELECT count(*) FROM catalog_sales WHERE cs_sold_date_sk >= " + sk(y1, 7, 1));
  add("q04_inv_static_range",
      "SELECT sum(inv_quantity_on_hand) FROM inventory "
      "WHERE inv_date_sk BETWEEN " + sk(y0, 3, 1) + " AND " + sk(y0, 5, 31));
  add("q05_ss_static_inlist",
      "SELECT count(*) FROM store_sales WHERE ss_sold_date_sk IN (" +
      sk(y0, 1, 15) + ", " + sk(y0, 7, 15) + ", " + sk(y1, 1, 15) + ")");

  // --- Join-induced dynamic elimination -------------------------------------
  add("q06_ss_join_quarter",
      "SELECT avg(ss.ss_sales_price) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE d.d_year = " + std::to_string(y1) + " AND d.d_moy BETWEEN 10 AND 12");
  add("q07_ws_join_month",
      "SELECT count(*) FROM web_sales ws "
      "JOIN date_dim d ON ws.ws_sold_date_sk = d.d_date_sk "
      "WHERE d.d_year = " + std::to_string(y1) + " AND d.d_moy = 6");
  add("q08_cs_in_subquery",
      "SELECT sum(cs_sales_price) FROM catalog_sales WHERE cs_sold_date_sk IN "
      "(SELECT d_date_sk FROM date_dim WHERE d_year = " + std::to_string(y0) +
      " AND d_moy <= 3)");
  add("q09_sr_join_quarter_col",
      "SELECT count(*) FROM store_returns sr "
      "JOIN date_dim d ON sr.sr_returned_date_sk = d.d_date_sk "
      "WHERE d.d_quarter = 2 AND d.d_year = " + std::to_string(y0));
  add("q10_wr_in_subquery",
      "SELECT sum(wr_return_amt) FROM web_returns WHERE wr_returned_date_sk IN "
      "(SELECT d_date_sk FROM date_dim WHERE d_year = " + std::to_string(y1) +
      " AND d_moy BETWEEN 1 AND 2)");
  add("q11_cr_in_subquery_dom",
      "SELECT count(*) FROM catalog_returns WHERE cr_returned_date_sk IN "
      "(SELECT d_date_sk FROM date_dim WHERE d_year = " + std::to_string(y1) +
      " AND d_moy = 11 AND d_dom <= 7)");
  add("q12_inv_join_month",
      "SELECT avg(inv.inv_quantity_on_hand) FROM inventory inv "
      "JOIN date_dim d ON inv.inv_date_sk = d.d_date_sk "
      "WHERE d.d_year = " + std::to_string(y1) + " AND d.d_moy = 12");

  // --- Star joins (fact + date + second dimension) --------------------------
  add("q13_ss_star_item",
      "SELECT i.i_category, count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "WHERE d.d_year = " + std::to_string(y1) + " AND d.d_moy BETWEEN 4 AND 6 "
      "GROUP BY i.i_category");
  add("q14_ss_star_customer",
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk "
      "WHERE c.c_state = 'CA' AND d.d_year = " + std::to_string(y0));
  add("q15_ws_star_item_price",
      "SELECT sum(ws.ws_sales_price) FROM web_sales ws "
      "JOIN date_dim d ON ws.ws_sold_date_sk = d.d_date_sk "
      "JOIN item i ON ws.ws_item_sk = i.i_item_sk "
      "WHERE i.i_current_price > 150 AND d.d_moy = 3 AND d.d_year = " +
      std::to_string(y0));
  add("q16_cs_star_customer_quarter",
      "SELECT count(*) FROM catalog_sales cs "
      "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk "
      "JOIN customer c ON cs.cs_customer_sk = c.c_customer_sk "
      "WHERE d.d_quarter = 4 AND d.d_year = " + std::to_string(y1) +
      " AND c.c_birth_year < 1970");

  // --- No pruning opportunity ------------------------------------------------
  add("q17_ss_groupby_item",
      "SELECT ss_item_sk, count(*) FROM store_sales GROUP BY ss_item_sk "
      "ORDER BY ss_item_sk LIMIT 20");
  add("q18_ws_scalar_agg", "SELECT avg(ws_sales_price), count(*) FROM web_sales");
  add("q19_ss_item_join_nodate",
      "SELECT i.i_category, sum(ss.ss_sales_price) FROM store_sales ss "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk GROUP BY i.i_category");
  add("q20_inv_full_agg",
      "SELECT inv_warehouse_sk, sum(inv_quantity_on_hand) FROM inventory "
      "GROUP BY inv_warehouse_sk");

  // --- Mixed static + dynamic -------------------------------------------------
  add("q21_ss_static_plus_join",
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE ss.ss_sold_date_sk >= " + sk(y1, 1, 1) + " AND d.d_moy = 11");
  add("q22_ws_static_plus_customer",
      "SELECT avg(ws.ws_sales_price) FROM web_sales ws "
      "JOIN customer c ON ws.ws_customer_sk = c.c_customer_sk "
      "WHERE ws.ws_sold_date_sk BETWEEN " + sk(y0, 6, 1) + " AND " + sk(y0, 8, 31) +
      " AND c.c_state = 'WA'");

  // --- Fact-to-fact joins ------------------------------------------------------
  add("q23_ss_sr_item_join",
      "SELECT count(*) FROM store_returns sr "
      "JOIN store_sales ss ON sr.sr_item_sk = ss.ss_item_sk "
      "WHERE sr.sr_returned_date_sk BETWEEN " + sk(y1, 12, 1) + " AND " +
      sk(y1, 12, 31) + " AND ss.ss_sold_date_sk BETWEEN " + sk(y1, 11, 1) +
      " AND " + sk(y1, 12, 31));
  add("q24_ws_wr_date_join",
      "SELECT count(*) FROM web_returns wr "
      "JOIN web_sales ws ON wr.wr_returned_date_sk = ws.ws_sold_date_sk "
      "WHERE wr.wr_returned_date_sk >= " + sk(y1, 10, 1));

  // --- Adversarial: misleading selectivities (the paper's 6% bucket) ---------
  add("q25_ss_skewed_estimate",
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE ss.ss_quantity = 1 AND ss.ss_store_sk = 2 AND ss.ss_customer_sk = 5 "
      "AND d.d_moy = 8");
  add("q26_cs_eq_chain",
      "SELECT count(*) FROM catalog_sales cs "
      "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk "
      "WHERE cs.cs_quantity = 2 AND cs.cs_customer_sk = 10 AND d.d_dom = 15");

  add("q27_ss_static_and_skew",
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "WHERE ss.ss_sold_date_sk >= " + sk(y1, 1, 1) +
      " AND ss.ss_quantity = 1 AND ss.ss_store_sk = 2 AND d.d_moy = 11");

  return queries;
}

}  // namespace workload
}  // namespace mppdb
