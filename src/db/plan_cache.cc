#include "db/plan_cache.h"

#include <algorithm>

namespace mppdb {

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Racing concurrent misses on the same statement: last plan wins.
    it->second->plan = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.insertions;
    return;
  }
  lru_.push_front({key, std::move(entry)});
  by_key_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t PlanCache::InvalidateTable(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto& names = it->plan->table_names;
    if (std::find(names.begin(), names.end(), table_name) != names.end()) {
      by_key_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  lru_.clear();
  by_key_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mppdb
