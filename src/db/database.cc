#include "db/database.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "common/macros.h"
#include "sql/parser.h"
#include "types/date.h"

namespace mppdb {

Result<Oid> Database::CreateTable(const std::string& name, Schema schema,
                                  TableDistribution distribution,
                                  std::vector<int> distribution_columns) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return CreateTableLocked(name, std::move(schema), distribution,
                           std::move(distribution_columns));
}

Result<Oid> Database::CreatePartitionedTable(
    const std::string& name, Schema schema, TableDistribution distribution,
    std::vector<int> distribution_columns, std::vector<PartitionLevelDesc> level_descs,
    const std::vector<std::vector<PartitionBound>>& bounds_per_level) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return CreatePartitionedTableLocked(name, std::move(schema), distribution,
                                      std::move(distribution_columns),
                                      std::move(level_descs), bounds_per_level);
}

Result<Oid> Database::CreateTableLocked(const std::string& name, Schema schema,
                                        TableDistribution distribution,
                                        std::vector<int> distribution_columns) {
  MPPDB_ASSIGN_OR_RETURN(Oid oid,
                         catalog_.CreateTable(name, std::move(schema), distribution,
                                              std::move(distribution_columns)));
  MPPDB_RETURN_IF_ERROR(storage_.CreateStorage(catalog_.FindTable(oid)));
  // A name reused after DROP must not resurrect plans against the old oid.
  plan_cache_.InvalidateTable(name);
  return oid;
}

Result<Oid> Database::CreatePartitionedTableLocked(
    const std::string& name, Schema schema, TableDistribution distribution,
    std::vector<int> distribution_columns, std::vector<PartitionLevelDesc> level_descs,
    const std::vector<std::vector<PartitionBound>>& bounds_per_level) {
  MPPDB_ASSIGN_OR_RETURN(
      Oid oid, catalog_.CreatePartitionedTable(name, std::move(schema), distribution,
                                               std::move(distribution_columns),
                                               std::move(level_descs),
                                               bounds_per_level));
  MPPDB_RETURN_IF_ERROR(storage_.CreateStorage(catalog_.FindTable(oid)));
  plan_cache_.InvalidateTable(name);
  return oid;
}

Status Database::Load(const std::string& table, const std::vector<Row>& rows) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  const TableDescriptor* desc = catalog_.FindTable(table);
  if (desc == nullptr) return Status::NotFound("table '" + table + "' does not exist");
  return storage_.GetStore(desc->oid)->InsertBatch(rows);
}

namespace {

// Rebuilt nodes must keep the original's join-filter annotations (the
// placement pass runs before parameter binding).
PhysPtr KeepJoinFilters(const PhysicalNode& original,
                        std::shared_ptr<PhysicalNode> rebuilt) {
  rebuilt->CopyJoinFiltersFrom(original);
  return rebuilt;
}

// Rewrites every scalar expression embedded in a plan with `fn`.
PhysPtr RewritePlanExprs(const PhysPtr& node,
                         const std::function<ExprPtr(const ExprPtr&)>& fn) {
  std::vector<PhysPtr> children;
  children.reserve(node->children().size());
  for (const auto& child : node->children()) {
    children.push_back(RewritePlanExprs(child, fn));
  }
  switch (node->kind()) {
    case PhysNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      return KeepJoinFilters(*node, std::make_shared<FilterNode>(
                                        fn(filter.predicate()), children[0]));
    }
    case PhysNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      std::vector<ProjectItem> items = project.items();
      for (auto& item : items) item.expr = fn(item.expr);
      return KeepJoinFilters(*node, std::make_shared<ProjectNode>(
                                        std::move(items), children[0]));
    }
    case PhysNodeKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<HashJoinNode>(
                     join.join_type(), join.build_keys(), join.probe_keys(),
                     join.residual() ? fn(join.residual()) : nullptr,
                     children[0], children[1]));
    }
    case PhysNodeKind::kNestedLoopJoin: {
      const auto& join = static_cast<const NestedLoopJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<NestedLoopJoinNode>(
                     join.join_type(),
                     join.predicate() ? fn(join.predicate()) : nullptr,
                     children[0], children[1]));
    }
    case PhysNodeKind::kIndexNLJoin: {
      const auto& join = static_cast<const IndexNLJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<IndexNLJoinNode>(
                     children[0], join.inner_table(), join.inner_column_ids(),
                     join.inner_key_column(), join.outer_key(),
                     join.residual() ? fn(join.residual()) : nullptr));
    }
    case PhysNodeKind::kHashAgg: {
      const auto& agg = static_cast<const HashAggNode&>(*node);
      std::vector<AggItem> aggs = agg.aggs();
      for (auto& item : aggs) {
        if (item.arg != nullptr) item.arg = fn(item.arg);
      }
      return KeepJoinFilters(*node, std::make_shared<HashAggNode>(
                                        agg.group_by(), std::move(aggs),
                                        children[0]));
    }
    case PhysNodeKind::kDynamicIndexScan: {
      const auto& scan = static_cast<const DynamicIndexScanNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<DynamicIndexScanNode>(
                     scan.table_oid(), scan.scan_id(), scan.column_ids(),
                     scan.index_column(), scan.mode(), scan.lo(), scan.hi(),
                     scan.residual() ? fn(scan.residual()) : nullptr,
                     scan.ascending(), scan.per_unit_limit()));
    }
    case PhysNodeKind::kPartitionSelector: {
      const auto& sel = static_cast<const PartitionSelectorNode&>(*node);
      std::vector<ExprPtr> preds = sel.level_predicates();
      for (auto& pred : preds) {
        if (pred != nullptr) pred = fn(pred);
      }
      return KeepJoinFilters(
          *node, std::make_shared<PartitionSelectorNode>(
                     sel.table_oid(), sel.scan_id(), sel.level_keys(),
                     std::move(preds), children.empty() ? nullptr : children[0]));
    }
    case PhysNodeKind::kUpdate: {
      const auto& update = static_cast<const UpdateNode&>(*node);
      std::vector<UpdateSetItem> items = update.set_items();
      for (auto& item : items) item.value = fn(item.value);
      return KeepJoinFilters(
          *node, std::make_shared<UpdateNode>(
                     update.table_oid(), update.table_column_ids(),
                     update.rowid_ids(), std::move(items),
                     update.OutputIds()[0], children[0]));
    }
    default:
      return CloneWithChildren(node, std::move(children));
  }
}

// Collects the distinct catalog (root) table oids a plan touches, for plan-
// cache invalidation. Partition-level oids resolve to no catalog root and are
// skipped; every scan over a partitioned table also carries the root oid
// through its DynamicScan/CheckedPartScan/PartitionSelector nodes.
void CollectPlanOids(const PhysPtr& node, std::vector<Oid>* out) {
  Oid oid = kInvalidOid;
  switch (node->kind()) {
    case PhysNodeKind::kTableScan:
      oid = static_cast<const TableScanNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kCheckedPartScan:
      oid = static_cast<const CheckedPartScanNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kDynamicScan:
      oid = static_cast<const DynamicScanNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kDynamicIndexScan:
      oid = static_cast<const DynamicIndexScanNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kPartitionSelector:
      oid = static_cast<const PartitionSelectorNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kIndexNLJoin:
      oid = static_cast<const IndexNLJoinNode&>(*node).inner_table();
      break;
    case PhysNodeKind::kInsert:
      oid = static_cast<const InsertNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kUpdate:
      oid = static_cast<const UpdateNode&>(*node).table_oid();
      break;
    case PhysNodeKind::kDelete:
      oid = static_cast<const DeleteNode&>(*node).table_oid();
      break;
    default:
      break;
  }
  if (oid != kInvalidOid) out->push_back(oid);
  for (const PhysPtr& child : node->children()) CollectPlanOids(child, out);
}

std::vector<std::string> CollectPlanTables(const PhysPtr& plan, const Catalog& catalog) {
  std::vector<Oid> oids;
  if (plan != nullptr) CollectPlanOids(plan, &oids);
  std::vector<std::string> names;
  for (Oid oid : oids) {
    const TableDescriptor* desc = catalog.FindTable(oid);
    if (desc == nullptr) continue;
    if (std::find(names.begin(), names.end(), desc->name) == names.end()) {
      names.push_back(desc->name);
    }
  }
  return names;
}

// Planning-relevant option fingerprint appended to the plan-cache key: the
// same normalized text planned under a different optimizer or alternative
// toggles is a different plan.
std::string CacheKeySuffix(const QueryOptions& options) {
  std::string suffix = "\n|opt=";
  suffix += options.optimizer == OptimizerKind::kCascades ? 'C' : 'L';
  suffix += options.enable_partition_selection ? '1' : '0';
  suffix += options.enable_dynamic_elimination ? '1' : '0';
  suffix += options.enable_two_phase_agg ? '1' : '0';
  suffix += options.enable_index_join ? '1' : '0';
  suffix += options.enable_join_filters ? '1' : '0';
  suffix += options.enable_index_paths ? '1' : '0';
  return suffix;
}

}  // namespace

Result<PhysPtr> BindPlanParams(const PhysPtr& plan, const std::vector<Datum>& params) {
  return RewritePlanExprs(
      plan, [&params](const ExprPtr& expr) { return SubstituteParams(expr, params); });
}

Result<PhysPtr> Database::PlanStatement(const BoundStatement& stmt,
                                        const QueryOptions& options) {
  if (options.optimizer == OptimizerKind::kCascades) {
    CascadesOptimizer::Options opt;
    opt.enable_partition_selection = options.enable_partition_selection;
    opt.enable_dynamic_elimination = options.enable_dynamic_elimination;
    opt.enable_two_phase_agg = options.enable_two_phase_agg;
    opt.enable_index_join = options.enable_index_join;
    opt.enable_join_filters = options.enable_join_filters;
    opt.enable_index_paths = options.enable_index_paths;
    CascadesOptimizer optimizer(&catalog_, &storage_, opt);
    return optimizer.Plan(stmt);
  }
  LegacyPlanner::Options opt;
  opt.enable_static_elimination = options.enable_partition_selection;
  opt.enable_dynamic_elimination =
      options.enable_partition_selection && options.enable_dynamic_elimination;
  LegacyPlanner planner(&catalog_, &storage_, opt);
  // The legacy planner expects a normalized tree (selections pushed down).
  BoundStatement normalized = stmt;
  normalized.root = NormalizeLogical(stmt.root);
  return planner.Plan(normalized);
}

Result<PhysPtr> Database::PlanSql(const std::string& sql, const QueryOptions& options) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  Binder binder(&catalog_);
  MPPDB_ASSIGN_OR_RETURN(BoundStatement stmt, binder.BindSql(sql));
  return PlanStatement(stmt, options);
}

namespace {

Result<TypeId> ParseTypeName(const std::string& name) {
  if (name == "int" || name == "integer") return TypeId::kInt32;
  if (name == "bigint") return TypeId::kInt64;
  if (name == "double" || name == "float") return TypeId::kDouble;
  if (name == "varchar" || name == "text" || name == "string") return TypeId::kString;
  if (name == "date") return TypeId::kDate;
  if (name == "bool" || name == "boolean") return TypeId::kBool;
  return Status::BindError("unknown type '" + name + "'");
}

// Evaluates a DDL literal (bound against an empty scope) to a Datum, with
// date coercion for date-typed partition columns.
Result<Datum> DdlLiteral(const sql_ast::ParseExpr& expr, TypeId column_type) {
  using K = sql_ast::ParseExpr::Kind;
  switch (expr.kind) {
    case K::kIntLit:
      return Datum::Int64(expr.int_value);
    case K::kDoubleLit:
      return Datum::Double(expr.double_value);
    case K::kDateLit:
    case K::kStringLit: {
      if (column_type == TypeId::kDate || expr.kind == K::kDateLit) {
        int32_t days = 0;
        if (!date::Parse(expr.text, &days)) {
          return Status::BindError("malformed date literal '" + expr.text + "'");
        }
        return Datum::Date(days);
      }
      return Datum::String(expr.text);
    }
    case K::kBoolLit:
      return Datum::Bool(expr.int_value != 0);
    default:
      return Status::BindError("partition bounds must be literals");
  }
}

/// Applies a WITH (key = value, ...) option list to a table (empty
/// `partition`) or to matching leaf partitions. The only option today is
/// orientation = row | column.
Status ApplyStorageOptions(
    Catalog* catalog, const std::string& table, const std::string& partition,
    const std::vector<std::pair<std::string, std::string>>& options) {
  for (const auto& [key, value] : options) {
    if (key != "orientation") {
      return Status::BindError("unknown storage option '" + key + "'");
    }
    StorageOrientation orientation;
    if (value == "column") {
      orientation = StorageOrientation::kColumn;
    } else if (value == "row") {
      orientation = StorageOrientation::kRow;
    } else {
      return Status::BindError("orientation must be 'row' or 'column', got '" +
                               value + "'");
    }
    if (partition.empty()) {
      MPPDB_RETURN_IF_ERROR(catalog->SetTableOrientation(table, orientation));
    } else {
      MPPDB_RETURN_IF_ERROR(
          catalog->SetPartitionOrientation(table, partition, orientation));
    }
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Database::RunDdl(const sql_ast::Statement& parsed) {
  QueryResult result;
  result.columns = {"status"};
  if (parsed.kind == sql_ast::Statement::Kind::kAlterTable) {
    const sql_ast::AlterTableStmt& alter = *parsed.alter_table;
    MPPDB_RETURN_IF_ERROR(ApplyStorageOptions(&catalog_, alter.table,
                                              alter.partition, alter.options));
    // Orientation does not change plans, but cached entries may pin stale
    // EXPLAIN artifacts; invalidation is cheap and safe.
    plan_cache_.InvalidateTable(alter.table);
    result.rows = {{Datum::String("ALTER TABLE")}};
    return result;
  }
  if (parsed.kind == sql_ast::Statement::Kind::kCreateIndex) {
    const sql_ast::CreateIndexStmt& index = *parsed.create_index;
    MPPDB_RETURN_IF_ERROR(catalog_.CreateIndex(index.table, index.column));
    const TableDescriptor* table = catalog_.FindTable(index.table);
    MPPDB_RETURN_IF_ERROR(storage_.GetStore(table->oid)->CreateIndex(
        table->schema.FindColumn(index.column)));
    // A new index changes which plan is optimal for the table's statements.
    plan_cache_.InvalidateTable(index.table);
    result.rows = {{Datum::String("CREATE INDEX")}};
    return result;
  }
  if (parsed.kind == sql_ast::Statement::Kind::kDropTable) {
    const TableDescriptor* table = catalog_.FindTable(parsed.drop_table->table);
    if (table == nullptr) {
      return Status::NotFound("table '" + parsed.drop_table->table +
                              "' does not exist");
    }
    Oid oid = table->oid;
    MPPDB_RETURN_IF_ERROR(catalog_.DropTable(parsed.drop_table->table));
    MPPDB_RETURN_IF_ERROR(storage_.DropStorage(oid));
    plan_cache_.InvalidateTable(parsed.drop_table->table);
    result.rows = {{Datum::String("DROP TABLE")}};
    return result;
  }

  const sql_ast::CreateTableStmt& create = *parsed.create_table;
  std::vector<Column> columns;
  for (const sql_ast::ColumnDef& def : create.columns) {
    MPPDB_ASSIGN_OR_RETURN(TypeId type, ParseTypeName(def.type));
    columns.push_back({def.name, type});
  }
  Schema schema(std::move(columns));

  TableDistribution distribution = TableDistribution::kRandom;
  std::vector<int> distribution_columns;
  switch (create.distribution) {
    case sql_ast::CreateTableStmt::Distribution::kRandom:
      break;
    case sql_ast::CreateTableStmt::Distribution::kReplicated:
      distribution = TableDistribution::kReplicated;
      break;
    case sql_ast::CreateTableStmt::Distribution::kHash:
      distribution = TableDistribution::kHashed;
      for (const std::string& name : create.distribution_columns) {
        int index = schema.FindColumn(name);
        if (index < 0) {
          return Status::BindError("distribution column '" + name + "' not found");
        }
        distribution_columns.push_back(index);
      }
      break;
  }

  if (create.partition_levels.empty()) {
    MPPDB_RETURN_IF_ERROR(
        CreateTableLocked(create.table, std::move(schema), distribution,
                          std::move(distribution_columns))
            .status());
    MPPDB_RETURN_IF_ERROR(
        ApplyStorageOptions(&catalog_, create.table, "", create.with_options));
    result.rows = {{Datum::String("CREATE TABLE")}};
    return result;
  }

  std::vector<PartitionLevelDesc> level_descs;
  std::vector<std::vector<PartitionBound>> bounds_per_level;
  for (const sql_ast::PartitionLevelSpec& level : create.partition_levels) {
    int key = schema.FindColumn(level.column);
    if (key < 0) {
      return Status::BindError("partition column '" + level.column + "' not found");
    }
    TypeId key_type = schema.column(static_cast<size_t>(key)).type;
    std::vector<PartitionBound> bounds;
    if (level.is_range) {
      MPPDB_ASSIGN_OR_RETURN(Datum start, DdlLiteral(*level.start, key_type));
      MPPDB_ASSIGN_OR_RETURN(Datum end, DdlLiteral(*level.end, key_type));
      if (level.every <= 0 || !IsIntegral(start.type()) ||
          Datum::Compare(start, end) >= 0) {
        return Status::BindError(
            "range partitioning needs integral bounds with START < END and a "
            "positive EVERY step");
      }
      int64_t lo = start.AsInt64();
      int64_t hi = end.AsInt64();
      int part = 0;
      for (int64_t v = lo; v < hi; v += level.every, ++part) {
        int64_t upper = std::min(v + level.every, hi);
        Datum lo_datum = start.type() == TypeId::kDate
                             ? Datum::Date(static_cast<int32_t>(v))
                             : Datum::Int64(v);
        Datum hi_datum = start.type() == TypeId::kDate
                             ? Datum::Date(static_cast<int32_t>(upper))
                             : Datum::Int64(upper);
        bounds.push_back(PartitionBound::Range(std::move(lo_datum),
                                               std::move(hi_datum),
                                               "p" + std::to_string(part)));
      }
      level_descs.push_back({key, PartitionMethod::kRange});
    } else {
      std::vector<Datum> values;
      for (const auto& value_expr : level.values) {
        MPPDB_ASSIGN_OR_RETURN(Datum v, DdlLiteral(*value_expr, key_type));
        values.push_back(std::move(v));
      }
      bounds = partition_bounds::ListValues(values);
      level_descs.push_back({key, PartitionMethod::kList});
    }
    bounds_per_level.push_back(std::move(bounds));
  }
  MPPDB_RETURN_IF_ERROR(CreatePartitionedTableLocked(create.table, std::move(schema),
                                                     distribution,
                                                     std::move(distribution_columns),
                                                     std::move(level_descs),
                                                     bounds_per_level)
                            .status());
  MPPDB_RETURN_IF_ERROR(
      ApplyStorageOptions(&catalog_, create.table, "", create.with_options));
  result.rows = {{Datum::String("CREATE TABLE")}};
  return result;
}

namespace {

bool PlanHasDml(const PhysPtr& node) {
  if (node->kind() == PhysNodeKind::kInsert ||
      node->kind() == PhysNodeKind::kUpdate ||
      node->kind() == PhysNodeKind::kDelete) {
    return true;
  }
  for (const auto& child : node->children()) {
    if (PlanHasDml(child)) return true;
  }
  return false;
}

}  // namespace

Result<QueryResult> Database::ExecuteWithContext(const PhysPtr& plan,
                                                 const QueryOptions& options) {
  // Per-call executor: Run/Execute stay safe under concurrent callers because
  // nothing per-run is shared — only the scheduler pool, which is built for
  // concurrent task groups.
  Executor executor(&catalog_, &storage_, exec_options_);
  if (scheduler_ != nullptr) executor.SetScheduler(scheduler_.get());

  auto ctx = std::make_shared<QueryContext>();
  if (options.timeout_ms > 0) {
    ctx->SetTimeout(std::chrono::milliseconds(options.timeout_ms));
  }
  ctx->budget().set_limit(options.memory_limit_bytes);
  ctx->set_fault_injector(options.fault_injector);
  ctx->set_spill_dir(options.spill_dir);
  if (options.query_id != 0) {
    std::lock_guard<std::mutex> lock(query_mu_);
    active_queries_[options.query_id] = ctx;
  }
  // Transient failures (kTransientIO) retry at query level: Execute's
  // start-and-end teardown is idempotent (hub channels, exchanges, join
  // filters, budget usage all reset), so re-running the same plan on the
  // same context is safe. DML plans are excluded — a transient fault after
  // the apply phase must not apply the writes twice. Cancellation, deadline
  // expiry, and budget exhaustion are deliberate verdicts, never retried.
  const bool retriable_plan = !PlanHasDml(plan);
  Result<std::vector<Row>> rows = executor.Execute(plan, ctx.get());
  for (int attempt = 0; !rows.ok() && rows.status().IsRetriable() &&
                        retriable_plan && attempt < options.max_transient_retries;
       ++attempt) {
    if (options.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms << attempt));
    }
    rows = executor.Execute(plan, ctx.get());
  }
  if (options.query_id != 0) {
    std::lock_guard<std::mutex> lock(query_mu_);
    auto it = active_queries_.find(options.query_id);
    // Guard against a reused id registered by a newer statement.
    if (it != active_queries_.end() && it->second == ctx) active_queries_.erase(it);
  }
  MPPDB_RETURN_IF_ERROR(rows.status());
  QueryResult result;
  result.rows = std::move(rows).value();
  result.stats = executor.stats();
  return result;
}

bool Database::Cancel(uint64_t query_id) {
  std::shared_ptr<QueryContext> ctx;
  {
    std::lock_guard<std::mutex> lock(query_mu_);
    auto it = active_queries_.find(query_id);
    if (it == active_queries_.end()) return false;
    ctx = it->second;
  }
  // Outside query_mu_: Cancel runs the executor's abort callback, which may
  // take its own locks — never while holding the registry lock.
  ctx->Cancel();
  return true;
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const QueryOptions& options) {
  if (options.use_plan_cache) {
    Result<NormalizedSql> normalized = NormalizeSql(sql);
    if (normalized.ok() && normalized->cacheable) {
      return ExecuteCacheable(*normalized, options);
    }
    // Normalization failures fall through: the fresh parser owns the error
    // message for malformed SQL.
  }
  return ExecuteFresh(sql, options);
}

Result<QueryResult> Database::ExecuteCacheable(const NormalizedSql& normalized,
                                               const QueryOptions& options) {
  // When the normalizer lifted the literals itself, its extracted values are
  // the parameters; otherwise the statement already used $n and the caller's
  // QueryOptions::params apply.
  const std::vector<Datum>& values =
      normalized.auto_params ? normalized.params : options.params;
  const std::string key = normalized.text + CacheKeySuffix(options);

  // Shared lock before the cache lookup: DDL invalidates under the exclusive
  // lock, so an entry observed here stays consistent with the catalog for
  // the whole execution.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  std::shared_ptr<const CachedPlan> entry = plan_cache_.Lookup(key);
  const bool hit = entry != nullptr;
  if (!hit) {
    // Miss: plan the *normalized* text once, with $n placeholders intact, so
    // the published plan is value-independent (the paper's prepared-statement
    // contract — PartitionSelectors evaluate the parameters at run time).
    MPPDB_ASSIGN_OR_RETURN(sql_ast::Statement parsed,
                           ParseStatement(normalized.text));
    Binder binder(&catalog_);
    MPPDB_ASSIGN_OR_RETURN(BoundStatement stmt, binder.Bind(parsed));
    MPPDB_ASSIGN_OR_RETURN(PhysPtr plan, PlanStatement(stmt, options));
    auto cached = std::make_shared<CachedPlan>();
    cached->plan = std::move(plan);
    cached->columns = stmt.output_names;
    cached->params = AnalyzePlanParams(cached->plan);
    cached->table_names = CollectPlanTables(cached->plan, catalog_);
    if (cached->params.invariant && !stmt.explain) {
      plan_cache_.Insert(key, cached);
    }
    entry = std::move(cached);
  }

  // Rebind this call's values into a private copy of the plan (validating
  // arity and coercing strings where the plan expects dates), then execute.
  MPPDB_ASSIGN_OR_RETURN(std::vector<Datum> coerced,
                         CoerceParamValues(entry->params, values));
  PhysPtr bound = entry->plan;
  if (!coerced.empty()) {
    MPPDB_ASSIGN_OR_RETURN(bound, BindPlanParams(entry->plan, coerced));
  }
  MPPDB_ASSIGN_OR_RETURN(QueryResult result, ExecuteWithContext(bound, options));
  result.columns = entry->columns;
  result.plan = std::move(bound);
  result.plan_cache_hit = hit;
  return result;
}

namespace {

void CollectScanTables(const PhysicalNode& node, std::set<Oid>* oids) {
  switch (node.kind()) {
    case PhysNodeKind::kTableScan:
      oids->insert(static_cast<const TableScanNode&>(node).table_oid());
      break;
    case PhysNodeKind::kCheckedPartScan:
      oids->insert(static_cast<const CheckedPartScanNode&>(node).table_oid());
      break;
    case PhysNodeKind::kDynamicScan:
      oids->insert(static_cast<const DynamicScanNode&>(node).table_oid());
      break;
    case PhysNodeKind::kDynamicIndexScan:
      oids->insert(static_cast<const DynamicIndexScanNode&>(node).table_oid());
      break;
    default:
      break;
  }
  for (const PhysPtr& child : node.children()) {
    if (child != nullptr) CollectScanTables(*child, oids);
  }
}

/// Per-column encoding summary of one column-oriented storage unit, e.g.
/// "id: bit-packed, state: dictionary, note: plain". Chunks whose encodings
/// disagree report "mixed"; units with no rows report "empty".
std::string UnitEncodingSummary(const TableStore& store, Oid unit_oid,
                                const Schema& schema) {
  std::vector<std::map<ColumnEncoding, size_t>> counts(schema.size());
  size_t total_chunks = 0;
  for (int seg = 0; seg < store.num_segments(); ++seg) {
    const SliceColumns* cols = store.UnitColumns(unit_oid, seg);
    if (cols == nullptr || cols->row_count == 0) continue;
    total_chunks += cols->num_chunks();
    for (size_t c = 0; c < cols->columns.size() && c < counts.size(); ++c) {
      for (const EncodedColumnChunk& chunk : cols->columns[c]) {
        ++counts[c][chunk.encoding];
      }
    }
  }
  if (total_chunks == 0) return "empty";
  std::string out;
  for (size_t c = 0; c < schema.size(); ++c) {
    if (!out.empty()) out += ", ";
    out += schema.column(c).name;
    out += ": ";
    if (counts[c].size() == 1) {
      out += ColumnEncodingName(counts[c].begin()->first);
    } else {
      out += "mixed";
    }
  }
  return out;
}

/// EXPLAIN footer (appended after the plan tree): storage orientation of
/// every scanned table that has column-oriented units, with each unit's
/// per-column encodings. Tables that are entirely row-oriented print
/// nothing, keeping pre-existing EXPLAIN output byte-identical.
std::string StorageExplainFooter(const Catalog& catalog, StorageEngine& storage,
                                 const PhysPtr& plan) {
  if (plan == nullptr) return "";
  std::set<Oid> oids;
  CollectScanTables(*plan, &oids);
  std::string out;
  for (Oid oid : oids) {
    const TableDescriptor* desc = catalog.FindTable(oid);
    TableStore* store = storage.GetStore(oid);
    if (desc == nullptr || store == nullptr) continue;
    const std::vector<Oid> units = store->UnitOids();
    bool any_column = false;
    for (Oid unit : units) {
      any_column |=
          store->UnitOrientation(unit) == StorageOrientation::kColumn;
    }
    if (!any_column) continue;
    out += "Storage: " + desc->name + " (default " +
           StorageOrientationName(desc->default_orientation) + ")\n";
    for (Oid unit : units) {
      std::string label = desc->name;
      if (desc->IsPartitioned()) {
        for (const LeafPartitionInfo& leaf : desc->partition_scheme->Leaves()) {
          if (leaf.oid == unit) {
            label = leaf.qualified_name;
            break;
          }
        }
      }
      const StorageOrientation orientation = store->UnitOrientation(unit);
      out += "  " + label + ": " + StorageOrientationName(orientation);
      if (orientation == StorageOrientation::kColumn) {
        out += " (" + UnitEncodingSummary(*store, unit, desc->schema) + ")";
      }
      out += "\n";
    }
  }
  return out;
}

void CollectIndexScans(const PhysicalNode& node,
                       std::vector<const DynamicIndexScanNode*>* out) {
  if (node.kind() == PhysNodeKind::kDynamicIndexScan) {
    out->push_back(static_cast<const DynamicIndexScanNode*>(&node));
  }
  for (const PhysPtr& child : node.children()) {
    if (child != nullptr) CollectIndexScans(*child, out);
  }
}

std::string IndexBoundLabel(const IndexBound& bound, bool low) {
  if (bound.unbounded) return "*";
  return (low ? (bound.inclusive ? "[" : "(") : "") + bound.value.ToString() +
         (low ? "" : (bound.inclusive ? "]" : ")"));
}

/// EXPLAIN footer: the index access path chosen for each DynamicIndexScan,
/// spelled out per partition (leaves a PartitionSelector rules out at run
/// time are simply not probed). Plans without index scans print nothing,
/// keeping pre-existing EXPLAIN output byte-identical.
std::string IndexPathExplainFooter(const Catalog& catalog, const PhysPtr& plan) {
  if (plan == nullptr) return "";
  std::vector<const DynamicIndexScanNode*> scans;
  CollectIndexScans(*plan, &scans);
  std::string out;
  for (const DynamicIndexScanNode* scan : scans) {
    const TableDescriptor* desc = catalog.FindTable(scan->table_oid());
    if (desc == nullptr) continue;
    const std::string column = desc->schema.column(
        static_cast<size_t>(scan->index_column())).name;
    std::string path;
    switch (scan->mode()) {
      case IndexScanMode::kRangeSeek:
        path = "index range seek on " + column + " " +
               IndexBoundLabel(scan->lo(), true) + ".." +
               IndexBoundLabel(scan->hi(), false);
        break;
      case IndexScanMode::kOrderedWalk:
        path = "index ordered walk on " + column +
               (scan->ascending() ? " asc" : " desc");
        if (scan->per_unit_limit() > 0) {
          path += " limit " + std::to_string(scan->per_unit_limit());
        }
        break;
      case IndexScanMode::kMinMax:
        path = std::string("index ") + (scan->ascending() ? "min" : "max") +
               " probe on " + column;
        break;
    }
    out += "Access paths: " + desc->name + "\n";
    if (desc->IsPartitioned()) {
      for (const LeafPartitionInfo& leaf : desc->partition_scheme->Leaves()) {
        out += "  " + leaf.qualified_name + ": " + path + "\n";
      }
    } else {
      out += "  " + desc->name + ": " + path + "\n";
    }
  }
  return out;
}

/// EXPLAIN ANALYZE footer: execution counters from the completed run. The
/// out-of-core counters (DESIGN.md §14) make spilling observable here and in
/// ExecStats without perturbing result rows — the stats-only-visibility
/// invariant.
std::string ExecStatsExplainFooter(const QueryResult& result) {
  const ExecStats& s = result.stats;
  std::string out = "Execution: " + std::to_string(result.rows.size()) +
                    " result rows, " + std::to_string(s.tuples_scanned) +
                    " tuples scanned\n";
  out += "Spill: partitions=" + std::to_string(s.spill_partitions) +
         " bytes_written=" + std::to_string(s.spill_bytes_written) +
         " bytes_read=" + std::to_string(s.spill_bytes_read) +
         " passes=" + std::to_string(s.spill_passes) +
         " sort_runs=" + std::to_string(s.sort_runs) + "\n";
  return out;
}

}  // namespace

Result<QueryResult> Database::ExecuteFresh(const std::string& sql,
                                           const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(sql_ast::Statement parsed, ParseStatement(sql));
  if (parsed.kind == sql_ast::Statement::Kind::kCreateTable ||
      parsed.kind == sql_ast::Statement::Kind::kDropTable ||
      parsed.kind == sql_ast::Statement::Kind::kCreateIndex ||
      parsed.kind == sql_ast::Statement::Kind::kAlterTable) {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    return RunDdl(parsed);
  }
  // Writers (DML) take the state lock exclusively: the executor's
  // single-writer rule, upheld across concurrent statements. Reads (SELECT,
  // EXPLAIN) share it.
  const bool dml = parsed.kind == sql_ast::Statement::Kind::kInsert ||
                   parsed.kind == sql_ast::Statement::Kind::kUpdate ||
                   parsed.kind == sql_ast::Statement::Kind::kDelete;
  // Plain EXPLAIN never executes, so DML under it only reads catalog state;
  // EXPLAIN ANALYZE runs the statement and needs the writer lock for DML.
  const bool writes = dml && !(parsed.explain && !parsed.explain_analyze);
  std::shared_lock<std::shared_mutex> read_lock(state_mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> write_lock(state_mu_, std::defer_lock);
  if (writes) {
    write_lock.lock();
  } else {
    read_lock.lock();
  }

  Binder binder(&catalog_);
  MPPDB_ASSIGN_OR_RETURN(BoundStatement stmt, binder.Bind(parsed));
  PhysPtr plan;
  MPPDB_ASSIGN_OR_RETURN(plan, PlanStatement(stmt, options));
  if (!options.params.empty()) {
    MPPDB_ASSIGN_OR_RETURN(plan, BindPlanParams(plan, options.params));
  }
  if (stmt.explain) {
    std::string text = PlanToString(plan) +
                       StorageExplainFooter(catalog_, storage_, plan) +
                       IndexPathExplainFooter(catalog_, plan);
    QueryResult explained;
    if (stmt.explain_analyze) {
      // Execute the statement, then append execution counters (including
      // the spill counters) to the rendered plan.
      MPPDB_ASSIGN_OR_RETURN(QueryResult run, ExecuteWithContext(plan, options));
      text += ExecStatsExplainFooter(run);
      explained.stats = run.stats;
    }
    explained.rows = {{Datum::String(std::move(text))}};
    explained.columns = {"QUERY PLAN"};
    explained.plan = plan;
    return explained;
  }
  MPPDB_ASSIGN_OR_RETURN(QueryResult result, ExecuteWithContext(plan, options));
  result.columns = stmt.output_names;
  result.plan = plan;
  return result;
}

Result<QueryResult> Database::ExecutePlan(const PhysPtr& plan) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  Executor executor(&catalog_, &storage_, exec_options_);
  if (scheduler_ != nullptr) executor.SetScheduler(scheduler_.get());
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, executor.Execute(plan));
  QueryResult result;
  result.rows = std::move(rows);
  result.plan = plan;
  result.stats = executor.stats();
  return result;
}

Result<QueryResult> Database::ExecutePlan(const PhysPtr& plan,
                                          const QueryOptions& options) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  MPPDB_ASSIGN_OR_RETURN(QueryResult result, ExecuteWithContext(plan, options));
  result.plan = plan;
  return result;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(PhysPtr plan, PlanSql(sql, options));
  // The footer reads storage (and may lazily build encoded images), so it
  // shares the state lock like any read.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return PlanToString(plan) + StorageExplainFooter(catalog_, storage_, plan) +
         IndexPathExplainFooter(catalog_, plan);
}

}  // namespace mppdb
