#include "db/database.h"

#include <chrono>
#include <thread>

#include "common/macros.h"
#include "sql/parser.h"
#include "types/date.h"

namespace mppdb {

Result<Oid> Database::CreateTable(const std::string& name, Schema schema,
                                  TableDistribution distribution,
                                  std::vector<int> distribution_columns) {
  MPPDB_ASSIGN_OR_RETURN(Oid oid,
                         catalog_.CreateTable(name, std::move(schema), distribution,
                                              std::move(distribution_columns)));
  MPPDB_RETURN_IF_ERROR(storage_.CreateStorage(catalog_.FindTable(oid)));
  return oid;
}

Result<Oid> Database::CreatePartitionedTable(
    const std::string& name, Schema schema, TableDistribution distribution,
    std::vector<int> distribution_columns, std::vector<PartitionLevelDesc> level_descs,
    const std::vector<std::vector<PartitionBound>>& bounds_per_level) {
  MPPDB_ASSIGN_OR_RETURN(
      Oid oid, catalog_.CreatePartitionedTable(name, std::move(schema), distribution,
                                               std::move(distribution_columns),
                                               std::move(level_descs),
                                               bounds_per_level));
  MPPDB_RETURN_IF_ERROR(storage_.CreateStorage(catalog_.FindTable(oid)));
  return oid;
}

Status Database::Load(const std::string& table, const std::vector<Row>& rows) {
  const TableDescriptor* desc = catalog_.FindTable(table);
  if (desc == nullptr) return Status::NotFound("table '" + table + "' does not exist");
  return storage_.GetStore(desc->oid)->InsertBatch(rows);
}

Result<BoundStatement> Database::BindSql(const std::string& sql) {
  Binder binder(&catalog_);
  return binder.BindSql(sql);
}

namespace {

// Rebuilt nodes must keep the original's join-filter annotations (the
// placement pass runs before parameter binding).
PhysPtr KeepJoinFilters(const PhysicalNode& original,
                        std::shared_ptr<PhysicalNode> rebuilt) {
  rebuilt->CopyJoinFiltersFrom(original);
  return rebuilt;
}

// Rewrites every scalar expression embedded in a plan with `fn`.
PhysPtr RewritePlanExprs(const PhysPtr& node,
                         const std::function<ExprPtr(const ExprPtr&)>& fn) {
  std::vector<PhysPtr> children;
  children.reserve(node->children().size());
  for (const auto& child : node->children()) {
    children.push_back(RewritePlanExprs(child, fn));
  }
  switch (node->kind()) {
    case PhysNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      return KeepJoinFilters(*node, std::make_shared<FilterNode>(
                                        fn(filter.predicate()), children[0]));
    }
    case PhysNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      std::vector<ProjectItem> items = project.items();
      for (auto& item : items) item.expr = fn(item.expr);
      return KeepJoinFilters(*node, std::make_shared<ProjectNode>(
                                        std::move(items), children[0]));
    }
    case PhysNodeKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<HashJoinNode>(
                     join.join_type(), join.build_keys(), join.probe_keys(),
                     join.residual() ? fn(join.residual()) : nullptr,
                     children[0], children[1]));
    }
    case PhysNodeKind::kNestedLoopJoin: {
      const auto& join = static_cast<const NestedLoopJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<NestedLoopJoinNode>(
                     join.join_type(),
                     join.predicate() ? fn(join.predicate()) : nullptr,
                     children[0], children[1]));
    }
    case PhysNodeKind::kIndexNLJoin: {
      const auto& join = static_cast<const IndexNLJoinNode&>(*node);
      return KeepJoinFilters(
          *node, std::make_shared<IndexNLJoinNode>(
                     children[0], join.inner_table(), join.inner_column_ids(),
                     join.inner_key_column(), join.outer_key(),
                     join.residual() ? fn(join.residual()) : nullptr));
    }
    case PhysNodeKind::kHashAgg: {
      const auto& agg = static_cast<const HashAggNode&>(*node);
      std::vector<AggItem> aggs = agg.aggs();
      for (auto& item : aggs) {
        if (item.arg != nullptr) item.arg = fn(item.arg);
      }
      return KeepJoinFilters(*node, std::make_shared<HashAggNode>(
                                        agg.group_by(), std::move(aggs),
                                        children[0]));
    }
    case PhysNodeKind::kPartitionSelector: {
      const auto& sel = static_cast<const PartitionSelectorNode&>(*node);
      std::vector<ExprPtr> preds = sel.level_predicates();
      for (auto& pred : preds) {
        if (pred != nullptr) pred = fn(pred);
      }
      return KeepJoinFilters(
          *node, std::make_shared<PartitionSelectorNode>(
                     sel.table_oid(), sel.scan_id(), sel.level_keys(),
                     std::move(preds), children.empty() ? nullptr : children[0]));
    }
    case PhysNodeKind::kUpdate: {
      const auto& update = static_cast<const UpdateNode&>(*node);
      std::vector<UpdateSetItem> items = update.set_items();
      for (auto& item : items) item.value = fn(item.value);
      return KeepJoinFilters(
          *node, std::make_shared<UpdateNode>(
                     update.table_oid(), update.table_column_ids(),
                     update.rowid_ids(), std::move(items),
                     update.OutputIds()[0], children[0]));
    }
    default:
      return CloneWithChildren(node, std::move(children));
  }
}

}  // namespace

Result<PhysPtr> BindPlanParams(const PhysPtr& plan, const std::vector<Datum>& params) {
  return RewritePlanExprs(
      plan, [&params](const ExprPtr& expr) { return SubstituteParams(expr, params); });
}

Result<PhysPtr> Database::PlanStatement(const BoundStatement& stmt,
                                        const QueryOptions& options) {
  if (options.optimizer == OptimizerKind::kCascades) {
    CascadesOptimizer::Options opt;
    opt.enable_partition_selection = options.enable_partition_selection;
    opt.enable_dynamic_elimination = options.enable_dynamic_elimination;
    opt.enable_two_phase_agg = options.enable_two_phase_agg;
    opt.enable_index_join = options.enable_index_join;
    opt.enable_join_filters = options.enable_join_filters;
    CascadesOptimizer optimizer(&catalog_, &storage_, opt);
    return optimizer.Plan(stmt);
  }
  LegacyPlanner::Options opt;
  opt.enable_static_elimination = options.enable_partition_selection;
  opt.enable_dynamic_elimination =
      options.enable_partition_selection && options.enable_dynamic_elimination;
  LegacyPlanner planner(&catalog_, &storage_, opt);
  // The legacy planner expects a normalized tree (selections pushed down).
  BoundStatement normalized = stmt;
  normalized.root = NormalizeLogical(stmt.root);
  return planner.Plan(normalized);
}

Result<PhysPtr> Database::PlanSql(const std::string& sql, const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(BoundStatement stmt, BindSql(sql));
  return PlanStatement(stmt, options);
}

namespace {

Result<TypeId> ParseTypeName(const std::string& name) {
  if (name == "int" || name == "integer") return TypeId::kInt32;
  if (name == "bigint") return TypeId::kInt64;
  if (name == "double" || name == "float") return TypeId::kDouble;
  if (name == "varchar" || name == "text" || name == "string") return TypeId::kString;
  if (name == "date") return TypeId::kDate;
  if (name == "bool" || name == "boolean") return TypeId::kBool;
  return Status::BindError("unknown type '" + name + "'");
}

// Evaluates a DDL literal (bound against an empty scope) to a Datum, with
// date coercion for date-typed partition columns.
Result<Datum> DdlLiteral(const sql_ast::ParseExpr& expr, TypeId column_type) {
  using K = sql_ast::ParseExpr::Kind;
  switch (expr.kind) {
    case K::kIntLit:
      return Datum::Int64(expr.int_value);
    case K::kDoubleLit:
      return Datum::Double(expr.double_value);
    case K::kDateLit:
    case K::kStringLit: {
      if (column_type == TypeId::kDate || expr.kind == K::kDateLit) {
        int32_t days = 0;
        if (!date::Parse(expr.text, &days)) {
          return Status::BindError("malformed date literal '" + expr.text + "'");
        }
        return Datum::Date(days);
      }
      return Datum::String(expr.text);
    }
    case K::kBoolLit:
      return Datum::Bool(expr.int_value != 0);
    default:
      return Status::BindError("partition bounds must be literals");
  }
}

}  // namespace

Result<QueryResult> Database::RunDdl(const sql_ast::Statement& parsed) {
  QueryResult result;
  result.columns = {"status"};
  if (parsed.kind == sql_ast::Statement::Kind::kCreateIndex) {
    const sql_ast::CreateIndexStmt& index = *parsed.create_index;
    MPPDB_RETURN_IF_ERROR(catalog_.CreateIndex(index.table, index.column));
    const TableDescriptor* table = catalog_.FindTable(index.table);
    MPPDB_RETURN_IF_ERROR(storage_.GetStore(table->oid)->CreateIndex(
        table->schema.FindColumn(index.column)));
    result.rows = {{Datum::String("CREATE INDEX")}};
    return result;
  }
  if (parsed.kind == sql_ast::Statement::Kind::kDropTable) {
    const TableDescriptor* table = catalog_.FindTable(parsed.drop_table->table);
    if (table == nullptr) {
      return Status::NotFound("table '" + parsed.drop_table->table +
                              "' does not exist");
    }
    Oid oid = table->oid;
    MPPDB_RETURN_IF_ERROR(catalog_.DropTable(parsed.drop_table->table));
    MPPDB_RETURN_IF_ERROR(storage_.DropStorage(oid));
    result.rows = {{Datum::String("DROP TABLE")}};
    return result;
  }

  const sql_ast::CreateTableStmt& create = *parsed.create_table;
  std::vector<Column> columns;
  for (const sql_ast::ColumnDef& def : create.columns) {
    MPPDB_ASSIGN_OR_RETURN(TypeId type, ParseTypeName(def.type));
    columns.push_back({def.name, type});
  }
  Schema schema(std::move(columns));

  TableDistribution distribution = TableDistribution::kRandom;
  std::vector<int> distribution_columns;
  switch (create.distribution) {
    case sql_ast::CreateTableStmt::Distribution::kRandom:
      break;
    case sql_ast::CreateTableStmt::Distribution::kReplicated:
      distribution = TableDistribution::kReplicated;
      break;
    case sql_ast::CreateTableStmt::Distribution::kHash:
      distribution = TableDistribution::kHashed;
      for (const std::string& name : create.distribution_columns) {
        int index = schema.FindColumn(name);
        if (index < 0) {
          return Status::BindError("distribution column '" + name + "' not found");
        }
        distribution_columns.push_back(index);
      }
      break;
  }

  if (create.partition_levels.empty()) {
    MPPDB_RETURN_IF_ERROR(
        CreateTable(create.table, std::move(schema), distribution,
                    std::move(distribution_columns))
            .status());
    result.rows = {{Datum::String("CREATE TABLE")}};
    return result;
  }

  std::vector<PartitionLevelDesc> level_descs;
  std::vector<std::vector<PartitionBound>> bounds_per_level;
  for (const sql_ast::PartitionLevelSpec& level : create.partition_levels) {
    int key = schema.FindColumn(level.column);
    if (key < 0) {
      return Status::BindError("partition column '" + level.column + "' not found");
    }
    TypeId key_type = schema.column(static_cast<size_t>(key)).type;
    std::vector<PartitionBound> bounds;
    if (level.is_range) {
      MPPDB_ASSIGN_OR_RETURN(Datum start, DdlLiteral(*level.start, key_type));
      MPPDB_ASSIGN_OR_RETURN(Datum end, DdlLiteral(*level.end, key_type));
      if (level.every <= 0 || !IsIntegral(start.type()) ||
          Datum::Compare(start, end) >= 0) {
        return Status::BindError(
            "range partitioning needs integral bounds with START < END and a "
            "positive EVERY step");
      }
      int64_t lo = start.AsInt64();
      int64_t hi = end.AsInt64();
      int part = 0;
      for (int64_t v = lo; v < hi; v += level.every, ++part) {
        int64_t upper = std::min(v + level.every, hi);
        Datum lo_datum = start.type() == TypeId::kDate
                             ? Datum::Date(static_cast<int32_t>(v))
                             : Datum::Int64(v);
        Datum hi_datum = start.type() == TypeId::kDate
                             ? Datum::Date(static_cast<int32_t>(upper))
                             : Datum::Int64(upper);
        bounds.push_back(PartitionBound::Range(std::move(lo_datum),
                                               std::move(hi_datum),
                                               "p" + std::to_string(part)));
      }
      level_descs.push_back({key, PartitionMethod::kRange});
    } else {
      std::vector<Datum> values;
      for (const auto& value_expr : level.values) {
        MPPDB_ASSIGN_OR_RETURN(Datum v, DdlLiteral(*value_expr, key_type));
        values.push_back(std::move(v));
      }
      bounds = partition_bounds::ListValues(values);
      level_descs.push_back({key, PartitionMethod::kList});
    }
    bounds_per_level.push_back(std::move(bounds));
  }
  MPPDB_RETURN_IF_ERROR(CreatePartitionedTable(create.table, std::move(schema),
                                               distribution,
                                               std::move(distribution_columns),
                                               std::move(level_descs),
                                               bounds_per_level)
                            .status());
  result.rows = {{Datum::String("CREATE TABLE")}};
  return result;
}

namespace {

bool PlanHasDml(const PhysPtr& node) {
  if (node->kind() == PhysNodeKind::kInsert ||
      node->kind() == PhysNodeKind::kUpdate ||
      node->kind() == PhysNodeKind::kDelete) {
    return true;
  }
  for (const auto& child : node->children()) {
    if (PlanHasDml(child)) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<Row>> Database::ExecuteWithContext(const PhysPtr& plan,
                                                      const QueryOptions& options) {
  auto ctx = std::make_shared<QueryContext>();
  if (options.timeout_ms > 0) {
    ctx->SetTimeout(std::chrono::milliseconds(options.timeout_ms));
  }
  ctx->budget().set_limit(options.memory_limit_bytes);
  ctx->set_fault_injector(options.fault_injector);
  if (options.query_id != 0) {
    std::lock_guard<std::mutex> lock(query_mu_);
    active_queries_[options.query_id] = ctx;
  }
  // Transient failures (kTransientIO) retry at query level: Execute's
  // start-and-end teardown is idempotent (hub channels, exchanges, join
  // filters, budget usage all reset), so re-running the same plan on the
  // same context is safe. DML plans are excluded — a transient fault after
  // the apply phase must not apply the writes twice. Cancellation, deadline
  // expiry, and budget exhaustion are deliberate verdicts, never retried.
  const bool retriable_plan = !PlanHasDml(plan);
  Result<std::vector<Row>> rows = executor_.Execute(plan, ctx.get());
  for (int attempt = 0; !rows.ok() && rows.status().IsRetriable() &&
                        retriable_plan && attempt < options.max_transient_retries;
       ++attempt) {
    if (options.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms << attempt));
    }
    rows = executor_.Execute(plan, ctx.get());
  }
  if (options.query_id != 0) {
    std::lock_guard<std::mutex> lock(query_mu_);
    auto it = active_queries_.find(options.query_id);
    // Guard against a reused id registered by a newer statement.
    if (it != active_queries_.end() && it->second == ctx) active_queries_.erase(it);
  }
  return rows;
}

bool Database::Cancel(uint64_t query_id) {
  std::shared_ptr<QueryContext> ctx;
  {
    std::lock_guard<std::mutex> lock(query_mu_);
    auto it = active_queries_.find(query_id);
    if (it == active_queries_.end()) return false;
    ctx = it->second;
  }
  // Outside query_mu_: Cancel runs the executor's abort callback, which may
  // take its own locks — never while holding the registry lock.
  ctx->Cancel();
  return true;
}

Result<QueryResult> Database::Run(const std::string& sql, const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(sql_ast::Statement parsed, ParseStatement(sql));
  if (parsed.kind == sql_ast::Statement::Kind::kCreateTable ||
      parsed.kind == sql_ast::Statement::Kind::kDropTable ||
      parsed.kind == sql_ast::Statement::Kind::kCreateIndex) {
    return RunDdl(parsed);
  }
  Binder binder(&catalog_);
  MPPDB_ASSIGN_OR_RETURN(BoundStatement stmt, binder.Bind(parsed));
  PhysPtr plan;
  MPPDB_ASSIGN_OR_RETURN(plan, PlanStatement(stmt, options));
  if (!options.params.empty()) {
    MPPDB_ASSIGN_OR_RETURN(plan, BindPlanParams(plan, options.params));
  }
  if (stmt.explain) {
    QueryResult explained;
    explained.rows = {{Datum::String(PlanToString(plan))}};
    explained.columns = {"QUERY PLAN"};
    explained.plan = plan;
    return explained;
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteWithContext(plan, options));
  QueryResult result;
  result.rows = std::move(rows);
  result.columns = stmt.output_names;
  result.plan = plan;
  result.stats = executor_.stats();
  return result;
}

Result<QueryResult> Database::ExecutePlan(const PhysPtr& plan) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, executor_.Execute(plan));
  QueryResult result;
  result.rows = std::move(rows);
  result.plan = plan;
  result.stats = executor_.stats();
  return result;
}

Result<QueryResult> Database::ExecutePlan(const PhysPtr& plan,
                                          const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteWithContext(plan, options));
  QueryResult result;
  result.rows = std::move(rows);
  result.plan = plan;
  result.stats = executor_.stats();
  return result;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  MPPDB_ASSIGN_OR_RETURN(PhysPtr plan, PlanSql(sql, options));
  return PlanToString(plan);
}

}  // namespace mppdb
