#ifndef MPPDB_DB_PLAN_CACHE_H_
#define MPPDB_DB_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/plan.h"
#include "optimizer/param_analysis.h"

namespace mppdb {

/// One cached statement: the optimized physical plan with $n placeholders
/// intact, everything needed to rebind and execute it without touching the
/// parser, binder, or optimizer, and the table names that invalidate it.
/// Immutable once published — concurrent executions share it by shared_ptr
/// and each rebinds its own copy of the expressions (BindPlanParams clones).
struct CachedPlan {
  /// Optimized plan with ParamExpr placeholders (never executed directly).
  PhysPtr plan;
  /// Output column names of the statement.
  std::vector<std::string> columns;
  /// Per-$n expectations for rebind-time validation/coercion.
  PlanParamAnalysis params;
  /// Tables the plan reads: any DDL touching one of these names evicts the
  /// entry (DROP/CREATE TABLE change oids and storage, CREATE INDEX changes
  /// the best plan).
  std::vector<std::string> table_names;
};

/// A bounded LRU cache of optimized plans keyed on normalized SQL text (plus
/// the planning-relevant option fingerprint the Database appends to the key).
///
/// Thread safety: every method takes the internal mutex; lookups and
/// insertions from concurrent queries and invalidations from DDL threads are
/// safe. Entries are returned as shared_ptr<const CachedPlan>, so an entry
/// evicted or invalidated mid-execution stays alive for the executions that
/// already hold it.
class PlanCache {
 public:
  /// `capacity` = max resident entries (>= 1); least-recently-used beyond
  /// that are evicted.
  explicit PlanCache(size_t capacity = 128);

  /// Returns the entry for `key` (bumping it to most-recently-used), or null.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key);

  /// Publishes an entry under `key`, replacing any previous entry and
  /// evicting the LRU tail beyond capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> entry);

  /// Drops every entry whose plan reads `table_name` (DDL invalidation).
  /// Returns the number of entries dropped.
  size_t InvalidateTable(const std::string& table_name);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Monotonic counters since construction.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< capacity-driven LRU drops
    uint64_t invalidations = 0;  ///< DDL-driven drops
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  /// Front = most recently used. The map points into the list.
  using LruList = std::list<Entry>;

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> by_key_;
  Stats stats_;
};

}  // namespace mppdb

#endif  // MPPDB_DB_PLAN_CACHE_H_
