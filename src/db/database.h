#ifndef MPPDB_DB_DATABASE_H_
#define MPPDB_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "optimizer/cascades/cascades_optimizer.h"
#include "optimizer/planner/legacy_planner.h"
#include "sql/binder.h"
#include "storage/storage.h"

namespace mppdb {

/// Which optimizer compiles a statement: the paper's Orca-style Cascades
/// optimizer or the legacy Planner baseline.
enum class OptimizerKind { kCascades, kLegacyPlanner };

/// Per-statement execution options.
struct QueryOptions {
  OptimizerKind optimizer = OptimizerKind::kCascades;
  /// Fig. 17 switch: disable partition selection (selectors select all).
  bool enable_partition_selection = true;
  /// Disable only join-induced dynamic elimination.
  bool enable_dynamic_elimination = true;
  /// Disable the two-phase (local/global) aggregation alternative.
  bool enable_two_phase_agg = true;
  /// Disable the index nested-loop join alternative.
  bool enable_index_join = true;
  /// Disable the optimizer's runtime join-filter placement pass (the
  /// executor side has its own Executor::Options::join_filters switch).
  /// Results and all pre-existing ExecStats are identical either way; only
  /// the joinfilter_* counters (and the work saved) differ.
  bool enable_join_filters = true;
  /// Values for $1, $2, ... parameters, substituted before optimization.
  std::vector<Datum> params;
};

/// Result of one statement: rows, column names, the executed plan, and the
/// execution statistics that back the paper's experiments.
struct QueryResult {
  std::vector<Row> rows;
  std::vector<std::string> columns;
  PhysPtr plan;
  ExecStats stats;
};

/// The top-level embedded-database facade: catalog + storage + SQL front end
/// + both optimizers + the simulated MPP executor. This is the public entry
/// point used by the examples and benchmarks.
///
///   Database db(/*num_segments=*/4);
///   db.CreatePartitionedTable(...);
///   auto result = db.Run("SELECT avg(amount) FROM orders WHERE ...");
///
/// Pass Executor::Options{.parallel = true} to run every statement's plan
/// with one worker thread per segment (identical results, see Executor).
class Database {
 public:
  explicit Database(int num_segments, Executor::Options exec_options = {})
      : storage_(num_segments), executor_(&catalog_, &storage_, exec_options) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  StorageEngine& storage() { return storage_; }
  Executor& executor() { return executor_; }
  int num_segments() const { return storage_.num_segments(); }

  /// DDL: creates the table in the catalog and allocates storage.
  Result<Oid> CreateTable(const std::string& name, Schema schema,
                          TableDistribution distribution,
                          std::vector<int> distribution_columns);
  Result<Oid> CreatePartitionedTable(
      const std::string& name, Schema schema, TableDistribution distribution,
      std::vector<int> distribution_columns,
      std::vector<PartitionLevelDesc> level_descs,
      const std::vector<std::vector<PartitionBound>>& bounds_per_level);

  /// Bulk load (bypasses SQL; rows routed by f_T and the distribution).
  Status Load(const std::string& table, const std::vector<Row>& rows);

  /// Parses, binds, optimizes, and executes a statement.
  Result<QueryResult> Run(const std::string& sql, const QueryOptions& options = {});

  /// Parses, binds, and optimizes only — for plan-shape and plan-size
  /// experiments (§4.4).
  Result<PhysPtr> PlanSql(const std::string& sql, const QueryOptions& options = {});

  /// EXPLAIN-style rendering of the chosen plan.
  Result<std::string> Explain(const std::string& sql, const QueryOptions& options = {});

  /// Executes a pre-built physical plan.
  Result<QueryResult> ExecutePlan(const PhysPtr& plan);

 private:
  Result<BoundStatement> BindSql(const std::string& sql);
  Result<PhysPtr> PlanStatement(const BoundStatement& stmt,
                                const QueryOptions& options);
  /// Executes CREATE TABLE / DROP TABLE statements (paper §3.2's DDL: range
  /// or categorical constraints per partition, GPDB-flavored syntax).
  Result<QueryResult> RunDdl(const sql_ast::Statement& parsed);

  Catalog catalog_;
  StorageEngine storage_;
  Executor executor_;
};

/// Substitutes $N parameters throughout a physical plan's expressions
/// (prepared-statement execution: the plan is compiled once with parameter
/// placeholders and bound at run time — the paper's second dynamic-
/// elimination use case).
Result<PhysPtr> BindPlanParams(const PhysPtr& plan, const std::vector<Datum>& params);

}  // namespace mppdb

#endif  // MPPDB_DB_DATABASE_H_
