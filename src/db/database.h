#ifndef MPPDB_DB_DATABASE_H_
#define MPPDB_DB_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "db/plan_cache.h"
#include "exec/executor.h"
#include "optimizer/cascades/cascades_optimizer.h"
#include "optimizer/planner/legacy_planner.h"
#include "sql/binder.h"
#include "sql/normalizer.h"
#include "storage/storage.h"

namespace mppdb {

/// Which optimizer compiles a statement: the paper's Orca-style Cascades
/// optimizer or the legacy Planner baseline.
enum class OptimizerKind { kCascades, kLegacyPlanner };

/// Per-statement execution options.
struct QueryOptions {
  OptimizerKind optimizer = OptimizerKind::kCascades;
  /// Fig. 17 switch: disable partition selection (selectors select all).
  bool enable_partition_selection = true;
  /// Disable only join-induced dynamic elimination.
  bool enable_dynamic_elimination = true;
  /// Disable the two-phase (local/global) aggregation alternative.
  bool enable_two_phase_agg = true;
  /// Disable the index nested-loop join alternative.
  bool enable_index_join = true;
  /// Disable the optimizer's runtime join-filter placement pass (the
  /// executor side has its own Executor::Options::join_filters switch).
  /// Results and all pre-existing ExecStats are identical either way; only
  /// the joinfilter_* counters (and the work saved) differ.
  bool enable_join_filters = true;
  /// Disable the index access-path alternatives (DynamicIndexScan range
  /// seeks, ORDER BY + LIMIT ordered walks, ungrouped MIN/MAX probes) and
  /// the fused bounded top-N operator. Results are bit-identical either way;
  /// only the index_seeks / index_rows_read / topn_rows_cut counters (and
  /// the work saved) differ.
  bool enable_index_paths = true;
  /// Values for $1, $2, ... parameters, substituted before optimization.
  std::vector<Datum> params;

  /// --- Serving layer (DESIGN.md §11) --------------------------------------
  /// Consult the database's shared parameterized plan cache. The statement
  /// is normalized at lexer level (literals lifted into $n slots, case and
  /// whitespace canonicalized) and looked up by normalized text + the
  /// planning-relevant option fingerprint. On a hit, the cached optimized
  /// plan is rebound to this call's parameter values (string-to-date
  /// coercion applied where the plan expects dates) and executed — parse,
  /// bind, and the Cascades search are all skipped; dynamic partition
  /// elimination happens at run time through the PartitionSelector exactly
  /// as for a prepared statement. On a miss, the *normalized* text is
  /// planned (so the published plan carries $n placeholders and stays valid
  /// across values) and cached iff it is a non-EXPLAIN SELECT whose plan
  /// passes the parameter-invariance check (optimizer/param_analysis.h).
  /// DDL, DML, and EXPLAIN always take the fresh path; DDL on a table
  /// invalidates every cached plan reading it.
  bool use_plan_cache = false;

  /// --- Resilience (DESIGN.md "Failure model") -----------------------------
  /// Registers the statement under this id while it executes, so another
  /// thread can terminate it with Database::Cancel(query_id). 0 = not
  /// registered (still cancellable via a caller-owned QueryContext at the
  /// Executor layer).
  uint64_t query_id = 0;
  /// Wall-clock budget for the whole statement, retries included; expiry
  /// surfaces as kDeadlineExceeded. 0 = no deadline.
  int64_t timeout_ms = 0;
  /// Per-query memory budget charged by build tables, sort buffers, motion
  /// buffers, and join-filter summaries; exhaustion surfaces as
  /// kResourceExhausted after advisory allocations shed. 0 = unlimited.
  /// The serving layer (server/session_manager.h) sets this to the query's
  /// parcel of its resource group's budget.
  size_t memory_limit_bytes = 0;
  /// Query-level retries for retriable failures (Status::IsRetriable, i.e.
  /// kTransientIO): the executor's idempotent teardown resets hub channels,
  /// exchanges, and join filters between attempts. DML plans never retry —
  /// an attempt that failed after applying writes must not apply them twice.
  int max_transient_retries = 2;
  /// Base backoff between attempts, doubling per retry. 0 = immediate.
  int retry_backoff_ms = 1;
  /// Deterministic fault injector threaded through execution (tests and
  /// resilience benchmarks). Not owned; null = no injection.
  FaultInjector* fault_injector = nullptr;
  /// Directory for out-of-core spill files (hash join/agg partitions, sort
  /// runs) written when the memory budget refuses mandatory state. Empty =
  /// the system temp directory. Files live in a per-query subdirectory
  /// removed on completion, cancellation, deadline expiry, and retry
  /// teardown.
  std::string spill_dir;
};

/// Result of one statement: rows, column names, the executed plan, and the
/// execution statistics that back the paper's experiments.
struct QueryResult {
  std::vector<Row> rows;
  std::vector<std::string> columns;
  PhysPtr plan;
  ExecStats stats;
  /// True when the plan came from the plan cache (parse+bind+optimize
  /// skipped; only parameter rebinding ran).
  bool plan_cache_hit = false;
};

/// The top-level embedded-database facade: catalog + storage + SQL front end
/// + both optimizers + the simulated MPP executor. This is the public entry
/// point used by the examples, benchmarks, and the serving layer
/// (server/session_manager.h).
///
///   Database db(/*num_segments=*/4);
///   db.CreatePartitionedTable(...);
///   auto result = db.Run("SELECT avg(amount) FROM orders WHERE ...");
///
/// Pass Executor::Options{.parallel = true} to run every statement's plan
/// on the database's shared morsel scheduler (identical results, see
/// Executor): one work-stealing pool, sized to max_workers (default:
/// hardware_concurrency), is created up front and shared by every statement
/// — and by every concurrent statement.
///
/// Concurrency contract (audited for the serving layer):
///  * Run/Execute/ExecutePlan/PlanSql/Explain are safe to call from any
///    number of threads concurrently. Each call executes on its own
///    Executor instance (cheap: two pointers and a per-segment hub) that
///    shares the scheduler pool, so no per-run state is shared between
///    statements.
///  * Statements serialize on a reader/writer lock over the catalog and
///    storage: SELECT/EXPLAIN hold it shared for their full execution and
///    run fully concurrently with each other; DDL (CREATE/DROP TABLE,
///    CREATE INDEX), DML (INSERT/UPDATE/DELETE), and Load hold it exclusive
///    — a writer waits for in-flight readers and blocks new ones, which
///    also upholds the executor's single-writer DML rule across queries.
///  * Cancel(query_id) takes only the registry lock and may be called at
///    any time, including against a statement blocked on the state lock.
///  * TableStore lazy structures reached by concurrent readers (secondary
///    indexes, chunk synopses staled by earlier DML) serialize their
///    rebuilds internally (storage/storage.h).
///  * The plan cache is internally locked; DDL invalidates affected entries
///    while holding the state lock exclusively, so a reader that looked up
///    an entry under the shared lock can never execute a plan against a
///    catalog the entry predates.
class Database {
 public:
  explicit Database(int num_segments, Executor::Options exec_options = {})
      : storage_(num_segments), exec_options_(exec_options) {
    if (exec_options.parallel) {
      scheduler_ = std::make_unique<MorselScheduler>(
          Executor::ResolveWorkerCount(exec_options.max_workers));
    }
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Direct component access for tests and benchmarks. Not synchronized:
  /// callers touching these while other threads execute statements are on
  /// their own (the statement entry points below are the concurrent API).
  Catalog& catalog() { return catalog_; }
  StorageEngine& storage() { return storage_; }
  int num_segments() const { return storage_.num_segments(); }
  PlanCache& plan_cache() { return plan_cache_; }
  /// The execution options every per-statement executor is built from.
  const Executor::Options& exec_options() const { return exec_options_; }

  /// DDL: creates the table in the catalog and allocates storage.
  Result<Oid> CreateTable(const std::string& name, Schema schema,
                          TableDistribution distribution,
                          std::vector<int> distribution_columns);
  Result<Oid> CreatePartitionedTable(
      const std::string& name, Schema schema, TableDistribution distribution,
      std::vector<int> distribution_columns,
      std::vector<PartitionLevelDesc> level_descs,
      const std::vector<std::vector<PartitionBound>>& bounds_per_level);

  /// Bulk load (bypasses SQL; rows routed by f_T and the distribution).
  Status Load(const std::string& table, const std::vector<Row>& rows);

  /// Parses, binds, optimizes, and executes a statement — or, with
  /// QueryOptions::use_plan_cache, skips straight to rebind+execute on a
  /// cache hit. Thread-safe (see the class contract); `Run` is a synonym
  /// kept for the original single-user API.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryOptions& options = {});
  Result<QueryResult> Run(const std::string& sql, const QueryOptions& options = {}) {
    return Execute(sql, options);
  }

  /// Parses, binds, and optimizes only — for plan-shape and plan-size
  /// experiments (§4.4).
  Result<PhysPtr> PlanSql(const std::string& sql, const QueryOptions& options = {});

  /// EXPLAIN-style rendering of the chosen plan.
  Result<std::string> Explain(const std::string& sql, const QueryOptions& options = {});

  /// Executes a pre-built physical plan (read plans only: DML plans must go
  /// through Run/Execute, which serialize writers).
  Result<QueryResult> ExecutePlan(const PhysPtr& plan);
  /// Same, under the options' resilience controls (query_id registration,
  /// deadline, memory budget, fault injection, transient retries). The
  /// optimizer-selection fields are ignored — the plan is already built.
  Result<QueryResult> ExecutePlan(const PhysPtr& plan, const QueryOptions& options);

  /// Requests cooperative cancellation of the running statement registered
  /// under `query_id` (QueryOptions::query_id). Returns false if no such
  /// statement is active. The cancelled statement terminates within one
  /// batch with kCancelled, all workers joined and storage untouched.
  bool Cancel(uint64_t query_id);

 private:
  /// Fresh path: parse, route DDL/DML to the exclusive lock, SELECT to the
  /// shared lock, then plan + execute.
  Result<QueryResult> ExecuteFresh(const std::string& sql, const QueryOptions& options);
  /// Cache path (state lock held shared by the caller): look up or plan the
  /// normalized text, rebind parameter values, execute.
  Result<QueryResult> ExecuteCacheable(const NormalizedSql& normalized,
                                       const QueryOptions& options);
  /// Runs the plan under a QueryContext built from the options, with the
  /// query-id registry bookkeeping and the transient-retry loop, on a
  /// per-call executor wired to the shared scheduler.
  Result<QueryResult> ExecuteWithContext(const PhysPtr& plan,
                                         const QueryOptions& options);
  Result<PhysPtr> PlanStatement(const BoundStatement& stmt,
                                const QueryOptions& options);
  /// Executes CREATE TABLE / DROP TABLE statements (paper §3.2's DDL: range
  /// or categorical constraints per partition, GPDB-flavored syntax).
  /// Caller holds the state lock exclusively.
  Result<QueryResult> RunDdl(const sql_ast::Statement& parsed);

  /// DDL bodies without locking, shared by the public wrappers (which take
  /// the state lock) and RunDdl (which already holds it).
  Result<Oid> CreateTableLocked(const std::string& name, Schema schema,
                                TableDistribution distribution,
                                std::vector<int> distribution_columns);
  Result<Oid> CreatePartitionedTableLocked(
      const std::string& name, Schema schema, TableDistribution distribution,
      std::vector<int> distribution_columns,
      std::vector<PartitionLevelDesc> level_descs,
      const std::vector<std::vector<PartitionBound>>& bounds_per_level);

  Catalog catalog_;
  StorageEngine storage_;
  /// Shared work-stealing pool for parallel execution, created once per
  /// Database and shared by every (concurrent) statement's executor.
  std::unique_ptr<MorselScheduler> scheduler_;
  /// Template for each statement's per-call executor.
  Executor::Options exec_options_;
  /// Reader/writer lock backing the concurrency contract above.
  mutable std::shared_mutex state_mu_;
  /// Optimized-plan cache keyed on normalized SQL + option fingerprint.
  PlanCache plan_cache_;
  /// Live statements by QueryOptions::query_id, for Cancel(). shared_ptr so
  /// a cancel thread can safely poke a context the query thread is about to
  /// unregister.
  std::mutex query_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryContext>> active_queries_;
};

/// Substitutes $N parameters throughout a physical plan's expressions
/// (prepared-statement execution: the plan is compiled once with parameter
/// placeholders and bound at run time — the paper's second dynamic-
/// elimination use case).
Result<PhysPtr> BindPlanParams(const PhysPtr& plan, const std::vector<Datum>& params);

}  // namespace mppdb

#endif  // MPPDB_DB_DATABASE_H_
