#ifndef MPPDB_STORAGE_COLUMN_STORE_H_
#define MPPDB_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/synopsis.h"
#include "types/data_type.h"
#include "types/row.h"

namespace mppdb {

/// Per-chunk physical encoding of one column (DESIGN.md §12). Chosen
/// adaptively per 1024-row chunk by EncodeColumnChunk; every encoding is
/// lossless (decode reproduces the exact Datum sequence, nulls included).
enum class ColumnEncoding : uint8_t {
  kPlain,       ///< Datum vector as-is (mixed families, high-NDV doubles/strings)
  kDictionary,  ///< sorted distinct values + per-row uint32 codes
  kRunLength,   ///< (value, run length) pairs
  kBitPacked,   ///< frame-of-reference bit-packed integers + null bitmap
};

const char* ColumnEncodingName(ColumnEncoding encoding);

/// Approximate in-memory footprint of a Datum (variant header + string heap).
/// The unit of the bytes-scanned / bytes-saved accounting in ExecStats and
/// BENCH_storage.json; deliberately coarse but consistent across call sites.
size_t ApproxDatumBytes(const Datum& d);

/// One column over one 1024-row storage chunk, in its chosen encoding, plus
/// the chunk-level zone-map stats computed at encode time. `stats` is
/// bit-compatible with folding the same values through ColumnSynopsis::
/// AddValue in row order, so a slice synopsis can be assembled from encoded
/// chunks without decoding a single value (see SynopsisFromColumns).
struct EncodedColumnChunk {
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;
  /// Dictionary entries per chunk are capped so code tables stay L1-resident
  /// and per-dict-entry predicate work stays negligible next to the rows.
  static constexpr size_t kMaxDictSize = 256;

  ColumnEncoding encoding = ColumnEncoding::kPlain;
  size_t row_count = 0;
  ColumnSynopsis stats;

  /// kDictionary: sorted ascending (Datum::Compare), distinct, non-null.
  /// Sorted entries make codes order-preserving: a range predicate on values
  /// is a contiguous code range, and min/max are dict.front()/dict.back().
  std::vector<Datum> dict;
  /// kDictionary: one code per row; kNullCode marks NULL.
  std::vector<uint32_t> codes;

  /// kRunLength: maximal runs in row order; run values may be NULL.
  std::vector<Datum> run_values;
  std::vector<uint32_t> run_lengths;

  /// kBitPacked: all non-null values share this integral TypeId and are
  /// stored as (value - packed_base) in packed_bits-bit slots, little-endian
  /// within uint64 words. null_bitmap bit i set <=> row i is NULL (empty
  /// bitmap <=> no nulls).
  TypeId packed_type = TypeId::kInt64;
  int64_t packed_base = 0;
  uint8_t packed_bits = 0;
  std::vector<uint64_t> packed_words;
  std::vector<uint8_t> null_bitmap;

  /// kPlain.
  std::vector<Datum> plain;

  /// Approximate payload bytes of the chosen encoding / of the same values
  /// as raw Datums. encoded_bytes <= plain_bytes by the selection rule.
  size_t encoded_bytes = 0;
  size_t plain_bytes = 0;

  bool IsNullAt(size_t i) const;
  /// Random-access decode of row i (0 <= i < row_count).
  Datum ValueAt(size_t i) const;
  /// Full decode in row order, appended to *out.
  void AppendValuesTo(std::vector<Datum>* out) const;
  /// Bit-packed slot i as packed_base + raw slot value. Precondition:
  /// encoding == kBitPacked and row i is non-null.
  int64_t PackedValueAt(size_t i) const;
};

/// Encodes rows[begin, end) column `col` into the cheapest applicable
/// encoding (selection rules in DESIGN.md §12).
EncodedColumnChunk EncodeColumnChunk(const std::vector<Row>& rows, size_t begin,
                                     size_t end, size_t col);

/// The encoded image of one (unit, segment) slice: per column, one
/// EncodedColumnChunk per kStorageChunkRows-row chunk (same chunk boundaries
/// as SliceSynopsis). Built lazily by TableStore and staled by the slice
/// version counter, exactly like the synopsis.
struct SliceColumns {
  size_t row_count = 0;
  size_t num_columns = 0;
  /// columns[c][k] = chunk k of column c.
  std::vector<std::vector<EncodedColumnChunk>> columns;
  uint64_t built_version = 0;
  size_t encoded_bytes = 0;
  size_t plain_bytes = 0;

  size_t num_chunks() const {
    return (row_count + kStorageChunkRows - 1) / kStorageChunkRows;
  }
  /// Sum of encoded_bytes over one chunk's columns (bytes-scanned unit).
  size_t ChunkEncodedBytes(size_t chunk) const;
};

SliceColumns EncodeSlice(const std::vector<Row>& rows, size_t num_columns);

/// Assembles the slice synopsis from encoded chunk stats without decoding any
/// value: per-chunk columns are the stats captured at encode time (dictionary
/// min/max are dict.front()/back(), RLE extremes come from run values), and
/// the rollup merges the per-chunk summaries.
SliceSynopsis SynopsisFromColumns(const SliceColumns& cols);

/// Merges a per-chunk summary into a rollup, preserving AddValue's family
/// semantics for every field a skip decision may trust (min/max only while
/// `comparable`; counts always).
void MergeColumnSummary(ColumnSynopsis* into, const ColumnSynopsis& summary);

// ---------------------------------------------------------------------------
// Motion batch encoding: dictionary-coded columns stay encoded across the
// wire (per-destination and broadcast buffers), shrinking the exchange's
// in-flight footprint. Row-order lossless; decoded at the receiving segment.
// ---------------------------------------------------------------------------

struct MotionColumn {
  bool dict_encoded = false;
  /// dict_encoded: distinct values in first-appearance order; else the plain
  /// per-row values.
  std::vector<Datum> values;
  /// dict_encoded only: one code per row; EncodedColumnChunk::kNullCode = NULL.
  std::vector<uint32_t> codes;
};

struct EncodedRowBatch {
  size_t num_rows = 0;
  std::vector<MotionColumn> columns;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;

  std::vector<Row> Decode() const;
};

/// Columns eligible for Motion dictionary transfer: batches this small ship
/// cheaper as rows, and dictionaries past this cardinality stop paying.
inline constexpr size_t kMotionEncodeMinRows = 256;
inline constexpr size_t kMotionDictMaxEntries = 64;

/// Dictionary-encodes the batch if at least one string column's cardinality
/// stays within kMotionDictMaxEntries; returns nullopt (rows untouched) when
/// no column qualifies. On success `rows` is consumed.
std::optional<EncodedRowBatch> TryEncodeMotionBatch(std::vector<Row>&& rows);

}  // namespace mppdb

#endif  // MPPDB_STORAGE_COLUMN_STORE_H_
