#include "storage/storage.h"

#include <algorithm>

#include "common/macros.h"
#include "expr/eval.h"

namespace mppdb {

TableStore::TableStore(const TableDescriptor* desc, int num_segments)
    : desc_(desc), num_segments_(num_segments) {
  MPPDB_CHECK(desc != nullptr);
  MPPDB_CHECK(num_segments > 0);
  if (desc->IsPartitioned()) {
    for (Oid oid : desc->partition_scheme->AllLeafOids()) {
      units_.emplace(oid, std::vector<std::vector<Row>>(
                              static_cast<size_t>(num_segments)));
    }
  } else {
    units_.emplace(desc->oid, std::vector<std::vector<Row>>(
                                  static_cast<size_t>(num_segments)));
  }
  for (const auto& [oid, segments] : units_) {
    synopses_.emplace(
        oid, std::vector<SliceSynopsis>(static_cast<size_t>(num_segments),
                                        SliceSynopsis(desc->schema.size())));
    // Every unit gets an (empty, version-0) encoded-image slot: orientation
    // can change per leaf at runtime (ALTER TABLE), so eligibility is checked
    // at read time, not at construction.
    column_cache_.emplace(
        oid, std::vector<SliceColumns>(static_cast<size_t>(num_segments)));
  }
}

int TableStore::SegmentForRow(const Row& row) {
  switch (desc_->distribution) {
    case TableDistribution::kHashed:
      return static_cast<int>(HashRowColumns(row, desc_->distribution_columns) %
                              static_cast<uint64_t>(num_segments_));
    case TableDistribution::kRandom:
      return static_cast<int>(round_robin_++ % static_cast<uint64_t>(num_segments_));
    case TableDistribution::kReplicated:
      return -1;  // handled by caller: insert everywhere
  }
  return 0;
}

Status TableStore::Insert(const Row& row) {
  if (row.size() != desc_->schema.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + desc_->name);
  }
  Oid unit = desc_->oid;
  if (desc_->IsPartitioned()) {
    unit = desc_->partition_scheme->RouteTuple(row);
    if (unit == kInvalidOid) {
      return Status::OutOfRange("row " + RowToString(row) +
                                " does not map to any partition of " + desc_->name);
    }
  }
  auto it = units_.find(unit);
  MPPDB_CHECK(it != units_.end());
  if (desc_->distribution == TableDistribution::kReplicated) {
    for (int segment = 0; segment < num_segments_; ++segment) {
      const bool was_fresh = SynopsisFresh(unit, segment);
      it->second[static_cast<size_t>(segment)].push_back(row);
      BumpVersion(unit, segment);
      SynopsisAppend(unit, segment, row, was_fresh);
    }
  } else {
    int segment = SegmentForRow(row);
    const bool was_fresh = SynopsisFresh(unit, segment);
    it->second[static_cast<size_t>(segment)].push_back(row);
    BumpVersion(unit, segment);
    SynopsisAppend(unit, segment, row, was_fresh);
  }
  return Status::OK();
}

Status TableStore::InsertBatch(const std::vector<Row>& rows) {
  // Pass 1: validate and route every row before touching storage, so a bad
  // row leaves the store unchanged (all-or-nothing) and the append pass can
  // reserve exact slice capacities instead of growing per row.
  std::vector<Oid> units;
  units.reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != desc_->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for table " + desc_->name);
    }
    Oid unit = desc_->oid;
    if (desc_->IsPartitioned()) {
      unit = desc_->partition_scheme->RouteTuple(row);
      if (unit == kInvalidOid) {
        return Status::OutOfRange("row " + RowToString(row) +
                                  " does not map to any partition of " + desc_->name);
      }
    }
    units.push_back(unit);
  }

  // Pass 2: pick segments (in row order, so round-robin placement matches a
  // sequence of single Inserts), tally arrivals per slice, reserve and bump
  // each touched slice's version once, then append.
  const bool replicated = desc_->distribution == TableDistribution::kReplicated;
  std::vector<int> segments;
  std::map<std::pair<Oid, int>, size_t> slice_counts;
  if (replicated) {
    for (Oid unit : units) {
      for (int segment = 0; segment < num_segments_; ++segment) {
        ++slice_counts[{unit, segment}];
      }
    }
  } else {
    segments.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      segments.push_back(SegmentForRow(rows[i]));
      ++slice_counts[{units[i], segments[i]}];
    }
  }
  std::map<std::pair<Oid, int>, bool> slice_was_fresh;
  for (const auto& [slice, count] : slice_counts) {
    auto it = units_.find(slice.first);
    MPPDB_CHECK(it != units_.end());
    std::vector<Row>& slice_rows = it->second[static_cast<size_t>(slice.second)];
    slice_rows.reserve(slice_rows.size() + count);
    slice_was_fresh[slice] = SynopsisFresh(slice.first, slice.second);
    BumpVersion(slice.first, slice.second);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    auto it = units_.find(units[i]);
    if (replicated) {
      for (int segment = 0; segment < num_segments_; ++segment) {
        it->second[static_cast<size_t>(segment)].push_back(rows[i]);
        SynopsisAppend(units[i], segment, rows[i], slice_was_fresh[{units[i], segment}]);
      }
    } else {
      it->second[static_cast<size_t>(segments[i])].push_back(rows[i]);
      SynopsisAppend(units[i], segments[i], rows[i],
                     slice_was_fresh[{units[i], segments[i]}]);
    }
  }
  return Status::OK();
}

const std::vector<Row>& TableStore::UnitRows(Oid unit_oid, int segment) const {
  auto it = units_.find(unit_oid);
  MPPDB_CHECK(it != units_.end());
  MPPDB_CHECK(segment >= 0 && segment < num_segments_);
  return it->second[static_cast<size_t>(segment)];
}

std::vector<Row>* TableStore::MutableUnitRows(Oid unit_oid, int segment) {
  auto it = units_.find(unit_oid);
  MPPDB_CHECK(it != units_.end());
  MPPDB_CHECK(segment >= 0 && segment < num_segments_);
  BumpVersion(unit_oid, segment);
  return &it->second[static_cast<size_t>(segment)];
}

void TableStore::BumpVersion(Oid unit_oid, int segment) {
  auto it = versions_.find(unit_oid);
  if (it == versions_.end()) {
    it = versions_
             .emplace(unit_oid,
                      std::vector<uint64_t>(static_cast<size_t>(num_segments_), 0))
             .first;
  }
  ++it->second[static_cast<size_t>(segment)];
}

uint64_t TableStore::SliceVersion(Oid unit_oid, int segment) const {
  auto it = versions_.find(unit_oid);
  if (it == versions_.end()) return 0;
  return it->second[static_cast<size_t>(segment)];
}

bool TableStore::SynopsisFresh(Oid unit_oid, int segment) const {
  std::lock_guard<std::mutex> lock(synopsis_mu_);
  auto it = synopses_.find(unit_oid);
  MPPDB_CHECK(it != synopses_.end());
  return it->second[static_cast<size_t>(segment)].built_version ==
         SliceVersion(unit_oid, segment);
}

void TableStore::SynopsisAppend(Oid unit_oid, int segment, const Row& row,
                                bool was_fresh) {
  if (!was_fresh) return;  // staled by in-place DML; UnitSynopsis will rebuild
  std::lock_guard<std::mutex> lock(synopsis_mu_);
  auto it = synopses_.find(unit_oid);
  MPPDB_CHECK(it != synopses_.end());
  SliceSynopsis& synopsis = it->second[static_cast<size_t>(segment)];
  synopsis.Append(row);
  synopsis.built_version = SliceVersion(unit_oid, segment);
}

const SliceSynopsis& TableStore::UnitSynopsis(Oid unit_oid, int segment) const {
  // Serialized against other queries' freshness checks and rebuilds of the
  // same slice; the reference returned is stable until the next DML, which
  // the Database writer lock keeps out of any concurrent read's lifetime.
  std::lock_guard<std::mutex> lock(synopsis_mu_);
  auto it = synopses_.find(unit_oid);
  MPPDB_CHECK(it != synopses_.end());
  MPPDB_CHECK(segment >= 0 && segment < num_segments_);
  SliceSynopsis& synopsis = it->second[static_cast<size_t>(segment)];
  const uint64_t version = SliceVersion(unit_oid, segment);
  if (synopsis.built_version != version) {
    // Column-oriented slice with a fresh encoded image: assemble the synopsis
    // from the per-chunk stats captured at encode time (dictionary extremes,
    // RLE run values) instead of walking — and thereby decoding — every row.
    bool from_columns = false;
    if (desc_->UnitOrientation(unit_oid) == StorageOrientation::kColumn) {
      std::lock_guard<std::mutex> col_lock(colstore_mu_);
      auto col_it = column_cache_.find(unit_oid);
      MPPDB_CHECK(col_it != column_cache_.end());
      const SliceColumns& cols = col_it->second[static_cast<size_t>(segment)];
      if (cols.built_version == version) {
        synopsis = SynopsisFromColumns(cols);
        synopsis.built_version = version;
        from_columns = true;
      }
    }
    if (!from_columns) {
      const std::vector<Row>& rows = UnitRows(unit_oid, segment);
      synopsis.chunks.clear();
      synopsis.rollup = ChunkSynopsis(desc_->schema.size());
      for (const Row& row : rows) synopsis.Append(row);
      synopsis.built_version = version;
    }
  }
  return synopsis;
}

const SliceColumns* TableStore::UnitColumns(Oid unit_oid, int segment) const {
  if (desc_->UnitOrientation(unit_oid) != StorageOrientation::kColumn) {
    return nullptr;
  }
  // Same serialization contract as UnitSynopsis: concurrent queries may race
  // to re-encode a slice staled by earlier DML; the reference is stable until
  // the next DML (kept out of read lifetimes by the Database writer lock).
  std::lock_guard<std::mutex> lock(colstore_mu_);
  auto it = column_cache_.find(unit_oid);
  MPPDB_CHECK(it != column_cache_.end());
  MPPDB_CHECK(segment >= 0 && segment < num_segments_);
  SliceColumns& cols = it->second[static_cast<size_t>(segment)];
  const uint64_t version = SliceVersion(unit_oid, segment);
  if (cols.built_version != version) {
    cols = EncodeSlice(UnitRows(unit_oid, segment), desc_->schema.size());
    cols.built_version = version;
  }
  return &cols;
}

bool TableStore::ColumnsFresh(Oid unit_oid, int segment) const {
  if (desc_->UnitOrientation(unit_oid) != StorageOrientation::kColumn) {
    return true;
  }
  std::lock_guard<std::mutex> lock(colstore_mu_);
  auto it = column_cache_.find(unit_oid);
  MPPDB_CHECK(it != column_cache_.end());
  return it->second[static_cast<size_t>(segment)].built_version ==
         SliceVersion(unit_oid, segment);
}

std::optional<size_t> TableStore::ExactDistinctFromDictionaries(int column) const {
  if (column < 0 || static_cast<size_t>(column) >= desc_->schema.size()) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(colstore_mu_);
  // Sorted union of every slice's dictionary (and RLE value) sets. Exact only
  // if every non-empty slice is a fresh column-oriented image whose chunks
  // all enumerate their values.
  std::vector<Datum> merged;
  auto merge_value = [&merged](const Datum& v) -> bool {
    if (v.is_null()) return true;
    // The union spans slices that never met in one chunk; a cross-family
    // Datum::Compare would abort, so bail out to the estimate instead.
    if (!merged.empty() && !DatumsComparable(merged.front(), v)) return false;
    auto it = std::lower_bound(merged.begin(), merged.end(), v);
    if (it == merged.end() || !it->Equals(v)) merged.insert(it, v);
    return true;
  };
  for (const auto& [oid, segments] : units_) {
    for (int segment = 0; segment < num_segments_; ++segment) {
      const std::vector<Row>& rows = segments[static_cast<size_t>(segment)];
      if (rows.empty()) continue;
      if (desc_->UnitOrientation(oid) != StorageOrientation::kColumn) {
        return std::nullopt;
      }
      auto col_it = column_cache_.find(oid);
      MPPDB_CHECK(col_it != column_cache_.end());
      const SliceColumns& cols = col_it->second[static_cast<size_t>(segment)];
      if (cols.built_version != SliceVersion(oid, segment)) return std::nullopt;
      for (const EncodedColumnChunk& chunk :
           cols.columns[static_cast<size_t>(column)]) {
        switch (chunk.encoding) {
          case ColumnEncoding::kDictionary:
            for (const Datum& v : chunk.dict) {
              if (!merge_value(v)) return std::nullopt;
            }
            break;
          case ColumnEncoding::kRunLength:
            for (const Datum& v : chunk.run_values) {
              if (!merge_value(v)) return std::nullopt;
            }
            break;
          default:
            return std::nullopt;
        }
      }
    }
  }
  return merged.size();
}

namespace {

// Heterogeneous key comparator for binary searches over UnitIndex entries.
// Datum::Compare places NULL before every non-null value, so NULL keys form a
// prefix of the entry array.
struct IndexKeyOrder {
  bool operator()(const std::pair<Datum, size_t>& entry, const Datum& probe) const {
    return Datum::Compare(entry.first, probe) < 0;
  }
  bool operator()(const Datum& probe, const std::pair<Datum, size_t>& entry) const {
    return Datum::Compare(probe, entry.first) < 0;
  }
};

}  // namespace

Status TableStore::CreateIndex(int column) {
  if (column < 0 || static_cast<size_t>(column) >= desc_->schema.size()) {
    return Status::InvalidArgument("index column out of range for " + desc_->name);
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  indexes_[column];  // default-construct per-unit maps lazily
  return Status::OK();
}

bool TableStore::HasIndex(int column) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return indexes_.count(column) > 0;
}

UnitIndex& TableStore::EnsureUnitIndex(Oid unit_oid, int segment, int column) {
  auto index_it = indexes_.find(column);
  MPPDB_CHECK(index_it != indexes_.end());
  auto& per_unit = index_it->second;
  auto unit_it = per_unit.find(unit_oid);
  if (unit_it == per_unit.end()) {
    unit_it = per_unit
                  .emplace(unit_oid, std::vector<UnitIndex>(
                                         static_cast<size_t>(num_segments_)))
                  .first;
  }
  UnitIndex& index = unit_it->second[static_cast<size_t>(segment)];

  uint64_t current_version = 1;
  auto version_it = versions_.find(unit_oid);
  if (version_it != versions_.end()) {
    current_version = version_it->second[static_cast<size_t>(segment)] + 1;
  }
  if (index.built_version != current_version) {
    // (Re)build: the slice changed since the index was last built. The
    // position tie-break keeps equal keys in storage order, which ordered
    // walks rely on (see UnitIndex).
    const std::vector<Row>& rows = UnitRows(unit_oid, segment);
    index.entries.clear();
    index.entries.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      index.entries.emplace_back(rows[i][static_cast<size_t>(column)], i);
    }
    std::sort(index.entries.begin(), index.entries.end(),
              [](const auto& a, const auto& b) {
                int c = Datum::Compare(a.first, b.first);
                if (c != 0) return c < 0;
                return a.second < b.second;
              });
    index.built_version = current_version;
  }
  return index;
}

std::vector<size_t> TableStore::IndexLookup(Oid unit_oid, int segment, int column,
                                            const Datum& key) {
  std::lock_guard<std::mutex> lock(index_mu_);
  UnitIndex& index = EnsureUnitIndex(unit_oid, segment, column);

  std::vector<size_t> positions;
  if (key.is_null()) return positions;  // NULL keys never match
  // equal_range bounds the match run up front so positions can be sized
  // exactly, instead of growing through push_back reallocations on wide runs.
  auto [lower, upper] = std::equal_range(index.entries.begin(), index.entries.end(),
                                         key, IndexKeyOrder{});
  positions.reserve(static_cast<size_t>(upper - lower));
  for (auto it = lower; it != upper; ++it) positions.push_back(it->second);
  return positions;
}

std::vector<size_t> TableStore::IndexRangeSeek(Oid unit_oid, int segment, int column,
                                               const IndexBound& lo,
                                               const IndexBound& hi) {
  std::vector<size_t> positions;
  if ((!lo.unbounded && lo.value.is_null()) || (!hi.unbounded && hi.value.is_null())) {
    return positions;  // a NULL bound compares to nothing
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  UnitIndex& index = EnsureUnitIndex(unit_oid, segment, column);
  const auto& entries = index.entries;
  // NULL column values never satisfy a range predicate; they sort first, so
  // the walk over [first_non_null, end) covers every candidate.
  auto begin = std::partition_point(
      entries.begin(), entries.end(),
      [](const std::pair<Datum, size_t>& e) { return e.first.is_null(); });
  auto end = entries.end();
  if (!lo.unbounded) {
    begin = lo.inclusive
                ? std::lower_bound(begin, end, lo.value, IndexKeyOrder{})
                : std::upper_bound(begin, end, lo.value, IndexKeyOrder{});
  }
  if (!hi.unbounded) {
    end = hi.inclusive ? std::upper_bound(begin, end, hi.value, IndexKeyOrder{})
                       : std::lower_bound(begin, end, hi.value, IndexKeyOrder{});
  }
  positions.reserve(static_cast<size_t>(end - begin));
  for (auto it = begin; it != end; ++it) positions.push_back(it->second);
  // Ascending storage order: the caller's residual filter then visits rows in
  // exactly the order a full scan would, keeping output order bit-identical.
  std::sort(positions.begin(), positions.end());
  return positions;
}

std::vector<size_t> TableStore::IndexOrderedWalk(Oid unit_oid, int segment,
                                                 int column, bool ascending_order,
                                                 size_t limit) {
  std::lock_guard<std::mutex> lock(index_mu_);
  UnitIndex& index = EnsureUnitIndex(unit_oid, segment, column);
  const auto& entries = index.entries;
  const size_t cap = limit == 0 ? entries.size() : std::min(limit, entries.size());
  std::vector<size_t> positions;
  positions.reserve(cap);
  if (ascending_order) {
    // Entry order is already (key asc, position asc): NULLs first, ties in
    // storage order — the stable ascending sort order.
    for (size_t i = 0; i < cap; ++i) positions.push_back(entries[i].second);
    return positions;
  }
  // Descending: iterate equal-key runs from the back, but emit each run
  // forward so ties stay in storage order (the stable descending sort keeps
  // input order within equal keys). NULLs — the lowest run — come out last.
  size_t run_end = entries.size();
  while (run_end > 0 && positions.size() < cap) {
    size_t run_begin = run_end;
    while (run_begin > 0 &&
           Datum::Compare(entries[run_begin - 1].first, entries[run_end - 1].first) ==
               0) {
      --run_begin;
    }
    for (size_t i = run_begin; i < run_end && positions.size() < cap; ++i) {
      positions.push_back(entries[i].second);
    }
    run_end = run_begin;
  }
  return positions;
}

std::optional<size_t> TableStore::IndexMinMax(Oid unit_oid, int segment, int column,
                                              bool minimum) {
  std::lock_guard<std::mutex> lock(index_mu_);
  UnitIndex& index = EnsureUnitIndex(unit_oid, segment, column);
  const auto& entries = index.entries;
  auto first_non_null = std::partition_point(
      entries.begin(), entries.end(),
      [](const std::pair<Datum, size_t>& e) { return e.first.is_null(); });
  if (first_non_null == entries.end()) return std::nullopt;
  if (minimum) return first_non_null->second;
  // Maximum: first entry of the highest-key run, for a deterministic pick.
  auto last = entries.end() - 1;
  auto run_begin = std::lower_bound(first_non_null, entries.end(), last->first,
                                    IndexKeyOrder{});
  return run_begin->second;
}

std::vector<Oid> TableStore::UnitOids() const {
  std::vector<Oid> oids;
  if (desc_->IsPartitioned()) {
    oids = desc_->partition_scheme->AllLeafOids();
  } else {
    oids.push_back(desc_->oid);
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

size_t TableStore::TotalRows() const {
  size_t total = 0;
  for (const auto& [oid, segments] : units_) {
    for (const auto& rows : segments) total += rows.size();
  }
  return total;
}

size_t TableStore::UnitTotalRows(Oid unit_oid) const {
  auto it = units_.find(unit_oid);
  MPPDB_CHECK(it != units_.end());
  size_t total = 0;
  for (const auto& rows : it->second) total += rows.size();
  return total;
}

Status StorageEngine::CreateStorage(const TableDescriptor* desc) {
  if (desc == nullptr) return Status::InvalidArgument("null table descriptor");
  if (stores_.count(desc->oid) > 0) {
    return Status::AlreadyExists("storage for table already exists: " + desc->name);
  }
  stores_.emplace(desc->oid, std::make_unique<TableStore>(desc, num_segments_));
  return Status::OK();
}

Status StorageEngine::DropStorage(Oid table_oid) {
  if (stores_.erase(table_oid) == 0) {
    return Status::NotFound("no storage for table oid " + std::to_string(table_oid));
  }
  return Status::OK();
}

TableStore* StorageEngine::GetStore(Oid table_oid) {
  auto it = stores_.find(table_oid);
  return it == stores_.end() ? nullptr : it->second.get();
}

const TableStore* StorageEngine::GetStore(Oid table_oid) const {
  auto it = stores_.find(table_oid);
  return it == stores_.end() ? nullptr : it->second.get();
}

}  // namespace mppdb
