#ifndef MPPDB_STORAGE_SYNOPSIS_H_
#define MPPDB_STORAGE_SYNOPSIS_H_

#include <cstdint>
#include <vector>

#include "types/row.h"

namespace mppdb {

/// Rows per storage chunk. Chunks are logical: a slice stays one contiguous
/// row vector (row positions, rowids, and index entries are unchanged), and
/// chunk c covers positions [c * kStorageChunkRows, (c+1) * kStorageChunkRows).
/// Kept equal to KernelContext::kDefaultChunkRows so the vectorized fused
/// filter's batch boundaries coincide with synopsis chunk boundaries.
inline constexpr size_t kStorageChunkRows = 1024;

/// Zone-map summary of one column over one run of rows (a chunk, or a whole
/// (unit, segment) slice as the rollup): min/max over the non-null values,
/// null count, and whether all non-null values belong to a single comparison
/// family (see DatumsComparable) — the precondition for trusting min/max in
/// a skip decision, and for proving a comparison against the column cannot
/// raise a type-mismatch error.
struct ColumnSynopsis {
  /// Extremes of the non-null values; NULL Datums until the first non-null
  /// value arrives, frozen (and meaningless) once `comparable` drops.
  Datum min;
  Datum max;
  size_t null_count = 0;
  size_t non_null_count = 0;
  /// False as soon as non-null values of two different comparison families
  /// land in the column (rows are not type-checked on insert).
  bool comparable = true;

  void AddValue(const Datum& v);

  /// Range probe: true if no non-null value of the summarized run can lie in
  /// [lo, hi] — either the run is all-NULL, or its extremes are trustworthy
  /// and provably outside the (non-null, same-family) probe bounds.
  /// Conservative: returns false on mixed-family runs or when the probe
  /// bounds are in a different comparison family than the extremes (a
  /// cross-family Datum::Compare would abort). Used by predicate zone-map
  /// skipping's runtime extension: join-filter min/max ranges probe chunk and
  /// rollup synopses through this single entry point.
  bool ProvablyDisjointFrom(const Datum& lo, const Datum& hi) const;
};

/// Per-column synopses plus the row count of one chunk (or of a whole slice,
/// when used as a SliceSynopsis rollup).
struct ChunkSynopsis {
  size_t row_count = 0;
  std::vector<ColumnSynopsis> columns;

  ChunkSynopsis() = default;
  explicit ChunkSynopsis(size_t num_columns) : columns(num_columns) {}

  /// Folds one stored row in; `row` must have exactly columns.size() values.
  void AddRow(const Row& row);
};

/// All chunk synopses of one (unit, segment) slice plus a slice-wide rollup
/// (skipping the rollup skips every chunk at once). Maintained incrementally
/// on appends; invalidated by in-place DML through the slice's version
/// counter and rebuilt lazily on the next read (see TableStore).
struct SliceSynopsis {
  std::vector<ChunkSynopsis> chunks;
  ChunkSynopsis rollup;
  /// Slice version this synopsis reflects (TableStore version counter value;
  /// 0 = the never-mutated empty slice, which a fresh synopsis matches).
  uint64_t built_version = 0;

  SliceSynopsis() = default;
  explicit SliceSynopsis(size_t num_columns) : rollup(num_columns) {}

  /// Appends one row: extends the trailing chunk (allocating a new one at
  /// every kStorageChunkRows boundary) and the rollup.
  void Append(const Row& row);
};

}  // namespace mppdb

#endif  // MPPDB_STORAGE_SYNOPSIS_H_
