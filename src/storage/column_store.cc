#include "storage/column_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "expr/eval.h"

namespace mppdb {

namespace {

/// Guarded equality for run detection: Datum::Compare aborts across
/// comparison families, so runs never compare across one.
bool SameRunValue(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (!DatumsComparable(a, b)) return false;
  return Datum::Compare(a, b) == 0;
}

bool IsPackableType(TypeId type) {
  return type == TypeId::kBool || IsIntegral(type);
}

uint64_t PackedSlot(const std::vector<uint64_t>& words, size_t i, uint8_t bits) {
  if (bits == 0) return 0;
  const size_t bit = i * static_cast<size_t>(bits);
  const size_t word = bit >> 6;
  const size_t off = bit & 63;
  uint64_t v = words[word] >> off;
  if (off + bits > 64) v |= words[word + 1] << (64 - off);
  if (bits < 64) v &= (uint64_t{1} << bits) - 1;
  return v;
}

void StorePackedSlot(std::vector<uint64_t>* words, size_t i, uint8_t bits,
                     uint64_t v) {
  if (bits == 0) return;
  const size_t bit = i * static_cast<size_t>(bits);
  const size_t word = bit >> 6;
  const size_t off = bit & 63;
  (*words)[word] |= v << off;
  if (off + bits > 64) (*words)[word + 1] |= v >> (64 - off);
}

uint8_t BitsFor(uint64_t range) {
  uint8_t bits = 0;
  while (range != 0) {
    ++bits;
    range >>= 1;
  }
  return bits;
}

Datum PackedDatum(TypeId type, int64_t v) {
  switch (type) {
    case TypeId::kBool:
      return Datum::Bool(v != 0);
    case TypeId::kInt32:
      return Datum::Int32(static_cast<int32_t>(v));
    case TypeId::kDate:
      return Datum::Date(static_cast<int32_t>(v));
    default:
      return Datum::Int64(v);
  }
}

size_t DatumVectorBytes(const std::vector<Datum>& values) {
  size_t bytes = 0;
  for (const Datum& v : values) bytes += ApproxDatumBytes(v);
  return bytes;
}

}  // namespace

const char* ColumnEncodingName(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kPlain:
      return "plain";
    case ColumnEncoding::kDictionary:
      return "dict";
    case ColumnEncoding::kRunLength:
      return "rle";
    case ColumnEncoding::kBitPacked:
      return "bitpack";
  }
  return "?";
}

size_t ApproxDatumBytes(const Datum& d) {
  size_t bytes = sizeof(Datum);
  if (!d.is_null() && d.type() == TypeId::kString) bytes += d.string_value().size();
  return bytes;
}

bool EncodedColumnChunk::IsNullAt(size_t i) const {
  switch (encoding) {
    case ColumnEncoding::kDictionary:
      return codes[i] == kNullCode;
    case ColumnEncoding::kRunLength: {
      size_t base = 0;
      for (size_t r = 0; r < run_values.size(); ++r) {
        base += run_lengths[r];
        if (i < base) return run_values[r].is_null();
      }
      return false;
    }
    case ColumnEncoding::kBitPacked:
      return !null_bitmap.empty() && (null_bitmap[i >> 3] >> (i & 7) & 1) != 0;
    case ColumnEncoding::kPlain:
      return plain[i].is_null();
  }
  return false;
}

Datum EncodedColumnChunk::ValueAt(size_t i) const {
  switch (encoding) {
    case ColumnEncoding::kDictionary:
      return codes[i] == kNullCode ? Datum::Null() : dict[codes[i]];
    case ColumnEncoding::kRunLength: {
      size_t base = 0;
      for (size_t r = 0; r < run_values.size(); ++r) {
        base += run_lengths[r];
        if (i < base) return run_values[r];
      }
      MPPDB_CHECK(false);
      return Datum::Null();
    }
    case ColumnEncoding::kBitPacked:
      if (IsNullAt(i)) return Datum::Null();
      return PackedDatum(packed_type, PackedValueAt(i));
    case ColumnEncoding::kPlain:
      return plain[i];
  }
  return Datum::Null();
}

int64_t EncodedColumnChunk::PackedValueAt(size_t i) const {
  return packed_base +
         static_cast<int64_t>(PackedSlot(packed_words, i, packed_bits));
}

void EncodedColumnChunk::AppendValuesTo(std::vector<Datum>* out) const {
  out->reserve(out->size() + row_count);
  switch (encoding) {
    case ColumnEncoding::kDictionary:
      for (uint32_t code : codes) {
        out->push_back(code == kNullCode ? Datum::Null() : dict[code]);
      }
      return;
    case ColumnEncoding::kRunLength:
      for (size_t r = 0; r < run_values.size(); ++r) {
        for (uint32_t k = 0; k < run_lengths[r]; ++k) out->push_back(run_values[r]);
      }
      return;
    case ColumnEncoding::kBitPacked:
      for (size_t i = 0; i < row_count; ++i) {
        out->push_back(IsNullAt(i) ? Datum::Null()
                                   : PackedDatum(packed_type, PackedValueAt(i)));
      }
      return;
    case ColumnEncoding::kPlain:
      out->insert(out->end(), plain.begin(), plain.end());
      return;
  }
}

EncodedColumnChunk EncodeColumnChunk(const std::vector<Row>& rows, size_t begin,
                                     size_t end, size_t col) {
  EncodedColumnChunk chunk;
  const size_t n = end - begin;
  chunk.row_count = n;

  // Analysis pass, in row order so `stats` matches the row path's AddValue
  // fold bit for bit. Distinct values are tracked into a sorted candidate
  // dictionary until it overflows kMaxDictSize or a second comparison family
  // appears (cross-family Compare would abort; such chunks go plain).
  size_t runs = 0;
  bool dict_ok = true;
  std::vector<Datum> distinct;
  bool all_packable = true;
  TypeId packed_type = TypeId::kInt64;
  bool saw_non_null = false;
  int64_t min_i64 = 0, max_i64 = 0;
  for (size_t i = begin; i < end; ++i) {
    const Datum& v = rows[i][col];
    const bool was_comparable = chunk.stats.comparable;
    chunk.stats.AddValue(v);
    chunk.plain_bytes += ApproxDatumBytes(v);
    if (i == begin || !SameRunValue(rows[i - 1][col], v)) ++runs;
    if (was_comparable && !chunk.stats.comparable) dict_ok = false;
    if (!v.is_null()) {
      if (!saw_non_null) {
        saw_non_null = true;
        packed_type = v.type();
        if (IsPackableType(packed_type)) {
          min_i64 = max_i64 = v.AsInt64();
        } else {
          all_packable = false;
        }
      } else if (all_packable) {
        if (v.type() != packed_type) {
          all_packable = false;
        } else {
          const int64_t x = v.AsInt64();
          min_i64 = std::min(min_i64, x);
          max_i64 = std::max(max_i64, x);
        }
      }
      if (dict_ok) {
        auto it = std::lower_bound(distinct.begin(), distinct.end(), v);
        if (it == distinct.end() || !it->Equals(v)) {
          if (distinct.size() >= EncodedColumnChunk::kMaxDictSize) {
            dict_ok = false;
            distinct.clear();
          } else {
            distinct.insert(it, v);
          }
        }
      }
    }
  }
  if (!saw_non_null) all_packable = false;
  const bool mixed = !chunk.stats.comparable;

  // Selection (DESIGN.md §12): long runs beat everything; then a small
  // dictionary; then frame-of-reference packing for single-type integrals;
  // plain otherwise. Mixed-family chunks always go plain.
  ColumnEncoding choice = ColumnEncoding::kPlain;
  if (!mixed) {
    if (runs * 8 <= n) {
      choice = ColumnEncoding::kRunLength;
    } else if (dict_ok && distinct.size() <= n / 2) {
      choice = ColumnEncoding::kDictionary;
    } else if (all_packable) {
      choice = ColumnEncoding::kBitPacked;
    }
  }
  chunk.encoding = choice;

  switch (choice) {
    case ColumnEncoding::kRunLength: {
      for (size_t i = begin; i < end; ++i) {
        const Datum& v = rows[i][col];
        if (i == begin || !SameRunValue(rows[i - 1][col], v)) {
          chunk.run_values.push_back(v);
          chunk.run_lengths.push_back(1);
        } else {
          ++chunk.run_lengths.back();
        }
      }
      chunk.encoded_bytes = DatumVectorBytes(chunk.run_values) +
                            chunk.run_lengths.size() * sizeof(uint32_t) + 16;
      break;
    }
    case ColumnEncoding::kDictionary: {
      chunk.dict = std::move(distinct);
      chunk.codes.reserve(n);
      for (size_t i = begin; i < end; ++i) {
        const Datum& v = rows[i][col];
        if (v.is_null()) {
          chunk.codes.push_back(EncodedColumnChunk::kNullCode);
          continue;
        }
        auto it = std::lower_bound(chunk.dict.begin(), chunk.dict.end(), v);
        chunk.codes.push_back(
            static_cast<uint32_t>(std::distance(chunk.dict.begin(), it)));
      }
      chunk.encoded_bytes = DatumVectorBytes(chunk.dict) +
                            chunk.codes.size() * sizeof(uint32_t) + 16;
      break;
    }
    case ColumnEncoding::kBitPacked: {
      chunk.packed_type = packed_type;
      chunk.packed_base = min_i64;
      chunk.packed_bits = BitsFor(static_cast<uint64_t>(max_i64) -
                                  static_cast<uint64_t>(min_i64));
      const size_t total_bits = n * static_cast<size_t>(chunk.packed_bits);
      chunk.packed_words.assign((total_bits + 63) / 64 + 1, 0);
      bool any_null = false;
      for (size_t i = begin; i < end; ++i) {
        const Datum& v = rows[i][col];
        if (v.is_null()) {
          if (!any_null) {
            any_null = true;
            chunk.null_bitmap.assign((n + 7) / 8, 0);
          }
          const size_t r = i - begin;
          chunk.null_bitmap[r >> 3] |= static_cast<uint8_t>(1u << (r & 7));
          continue;
        }
        StorePackedSlot(&chunk.packed_words, i - begin, chunk.packed_bits,
                        static_cast<uint64_t>(v.AsInt64()) -
                            static_cast<uint64_t>(chunk.packed_base));
      }
      chunk.encoded_bytes = chunk.packed_words.size() * sizeof(uint64_t) +
                            chunk.null_bitmap.size() + 24;
      break;
    }
    case ColumnEncoding::kPlain: {
      chunk.plain.reserve(n);
      for (size_t i = begin; i < end; ++i) chunk.plain.push_back(rows[i][col]);
      chunk.encoded_bytes = chunk.plain_bytes;
      break;
    }
  }
  return chunk;
}

size_t SliceColumns::ChunkEncodedBytes(size_t chunk) const {
  size_t bytes = 0;
  for (const auto& column : columns) bytes += column[chunk].encoded_bytes;
  return bytes;
}

SliceColumns EncodeSlice(const std::vector<Row>& rows, size_t num_columns) {
  SliceColumns cols;
  cols.row_count = rows.size();
  cols.num_columns = num_columns;
  cols.columns.resize(num_columns);
  const size_t chunks = cols.num_chunks();
  for (size_t c = 0; c < num_columns; ++c) cols.columns[c].reserve(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    const size_t begin = k * kStorageChunkRows;
    const size_t end = std::min(rows.size(), begin + kStorageChunkRows);
    for (size_t c = 0; c < num_columns; ++c) {
      cols.columns[c].push_back(EncodeColumnChunk(rows, begin, end, c));
      cols.encoded_bytes += cols.columns[c].back().encoded_bytes;
      cols.plain_bytes += cols.columns[c].back().plain_bytes;
    }
  }
  return cols;
}

void MergeColumnSummary(ColumnSynopsis* into, const ColumnSynopsis& summary) {
  into->null_count += summary.null_count;
  if (summary.non_null_count == 0) return;
  const bool had_values = into->non_null_count > 0;
  into->non_null_count += summary.non_null_count;
  if (!summary.comparable) {
    // The source run itself mixes families; the merged run does too. min/max
    // stay frozen (and untrusted), matching AddValue's behavior.
    into->comparable = false;
    return;
  }
  if (!had_values) {
    into->min = summary.min;
    into->max = summary.max;
    return;
  }
  if (!into->comparable) return;
  if (!DatumsComparable(into->min, summary.min)) {
    into->comparable = false;
    return;
  }
  if (Datum::Compare(summary.min, into->min) < 0) into->min = summary.min;
  if (Datum::Compare(summary.max, into->max) > 0) into->max = summary.max;
}

SliceSynopsis SynopsisFromColumns(const SliceColumns& cols) {
  SliceSynopsis synopsis(cols.num_columns);
  const size_t chunks = cols.num_chunks();
  synopsis.chunks.reserve(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    ChunkSynopsis chunk(cols.num_columns);
    for (size_t c = 0; c < cols.num_columns; ++c) {
      const EncodedColumnChunk& encoded = cols.columns[c][k];
      chunk.row_count = encoded.row_count;
      chunk.columns[c] = encoded.stats;
      MergeColumnSummary(&synopsis.rollup.columns[c], encoded.stats);
    }
    synopsis.rollup.row_count += chunk.row_count;
    synopsis.chunks.push_back(std::move(chunk));
  }
  return synopsis;
}

std::vector<Row> EncodedRowBatch::Decode() const {
  std::vector<Row> rows(num_rows);
  for (Row& row : rows) row.reserve(columns.size());
  for (const MotionColumn& column : columns) {
    if (column.dict_encoded) {
      for (size_t i = 0; i < num_rows; ++i) {
        rows[i].push_back(column.codes[i] == EncodedColumnChunk::kNullCode
                              ? Datum::Null()
                              : column.values[column.codes[i]]);
      }
    } else {
      for (size_t i = 0; i < num_rows; ++i) rows[i].push_back(column.values[i]);
    }
  }
  return rows;
}

std::optional<EncodedRowBatch> TryEncodeMotionBatch(std::vector<Row>&& rows) {
  const size_t n = rows.size();
  if (n < kMotionEncodeMinRows) return std::nullopt;
  const size_t width = rows[0].size();

  // First pass builds dictionaries for candidate (string, low-cardinality)
  // columns without consuming the rows, so a batch with no qualifying column
  // is handed back untouched.
  EncodedRowBatch batch;
  batch.num_rows = n;
  batch.columns.resize(width);
  bool any_encoded = false;
  for (size_t c = 0; c < width; ++c) {
    MotionColumn& column = batch.columns[c];
    std::unordered_map<std::string, uint32_t> code_of;
    std::vector<uint32_t> codes;
    codes.reserve(n);
    bool ok = true;
    for (size_t i = 0; i < n; ++i) {
      const Datum& v = rows[i][c];
      if (v.is_null()) {
        codes.push_back(EncodedColumnChunk::kNullCode);
        continue;
      }
      if (v.type() != TypeId::kString) {
        ok = false;
        break;
      }
      auto [it, inserted] =
          code_of.emplace(v.string_value(), static_cast<uint32_t>(code_of.size()));
      if (inserted && code_of.size() > kMotionDictMaxEntries) {
        ok = false;
        break;
      }
      codes.push_back(it->second);
    }
    if (!ok) continue;
    column.dict_encoded = true;
    column.values.resize(code_of.size());
    for (auto& [value, code] : code_of) {
      column.values[code] = Datum::String(value);
    }
    column.codes = std::move(codes);
    any_encoded = true;
  }
  if (!any_encoded) return std::nullopt;

  // Second pass transposes the remaining columns by move and totals the
  // bytes-shipped accounting.
  for (size_t c = 0; c < width; ++c) {
    MotionColumn& column = batch.columns[c];
    if (column.dict_encoded) continue;
    column.values.reserve(n);
    for (size_t i = 0; i < n; ++i) column.values.push_back(std::move(rows[i][c]));
  }
  for (size_t c = 0; c < width; ++c) {
    const MotionColumn& column = batch.columns[c];
    const size_t value_bytes = DatumVectorBytes(column.values);
    if (column.dict_encoded) {
      const size_t encoded = value_bytes + column.codes.size() * sizeof(uint32_t);
      // Plain cost of a dict column = every row's value at full width.
      size_t plain = n * sizeof(Datum);
      for (size_t i = 0; i < n; ++i) {
        if (column.codes[i] != EncodedColumnChunk::kNullCode) {
          plain += column.values[column.codes[i]].string_value().size();
        }
      }
      batch.plain_bytes += plain;
      batch.encoded_bytes += encoded;
    } else {
      batch.plain_bytes += value_bytes;
      batch.encoded_bytes += value_bytes;
    }
  }
  rows.clear();
  return batch;
}

}  // namespace mppdb
