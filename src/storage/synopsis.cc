#include "storage/synopsis.h"

#include "common/macros.h"
#include "expr/eval.h"

namespace mppdb {

void ColumnSynopsis::AddValue(const Datum& v) {
  if (v.is_null()) {
    ++null_count;
    return;
  }
  ++non_null_count;
  if (min.is_null()) {  // first non-null value
    min = v;
    max = v;
    return;
  }
  if (!comparable) return;
  // Datum::Compare aborts across comparison families, so the family check
  // must come first; a mixed-family column keeps its last single-family
  // extremes but is never trusted by skip decisions.
  if (!DatumsComparable(min, v)) {
    comparable = false;
    return;
  }
  if (Datum::Compare(v, min) < 0) min = v;
  if (Datum::Compare(v, max) > 0) max = v;
}

bool ColumnSynopsis::ProvablyDisjointFrom(const Datum& lo, const Datum& hi) const {
  if (non_null_count == 0) return true;  // only NULLs, which match no range
  if (!comparable) return false;
  if (lo.is_null() || hi.is_null()) return false;
  if (!DatumsComparable(min, lo) || !DatumsComparable(max, hi)) return false;
  return Datum::Compare(max, lo) < 0 || Datum::Compare(min, hi) > 0;
}

void ChunkSynopsis::AddRow(const Row& row) {
  MPPDB_CHECK(row.size() == columns.size());
  ++row_count;
  for (size_t i = 0; i < columns.size(); ++i) columns[i].AddValue(row[i]);
}

void SliceSynopsis::Append(const Row& row) {
  const size_t chunk = rollup.row_count / kStorageChunkRows;
  if (chunk == chunks.size()) chunks.emplace_back(rollup.columns.size());
  chunks[chunk].AddRow(row);
  rollup.AddRow(row);
}

}  // namespace mppdb
