#ifndef MPPDB_STORAGE_STORAGE_H_
#define MPPDB_STORAGE_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/synopsis.h"
#include "types/row.h"

namespace mppdb {

/// An ordered secondary index over one column of one storage unit's slice on
/// one segment: sorted (key, row position) pairs supporting equality seeks,
/// range seeks, and ordered walks. Rebuilt lazily when the underlying slice
/// changed (see TableStore).
struct UnitIndex {
  /// Sorted by (key, position) — Datum::Compare on the key (NULLs first),
  /// storage position as the tie-break, so ordered walks yield equal-key rows
  /// in storage order (the same relative order a stable sort of the slice
  /// produces). Positions index into the unit's rows.
  std::vector<std::pair<Datum, size_t>> entries;
  uint64_t built_version = 0;
};

/// One end of a key range for TableStore::IndexRangeSeek. Mirrors the
/// expression layer's IntervalBound (expr/interval.h) without depending on
/// it — the executor/optimizer converts sargable intervals into these.
struct IndexBound {
  Datum value;
  bool inclusive = false;
  bool unbounded = true;

  static IndexBound Unbounded() { return IndexBound{}; }
  static IndexBound Inclusive(Datum v) { return IndexBound{std::move(v), true, false}; }
  static IndexBound Exclusive(Datum v) { return IndexBound{std::move(v), false, false}; }
};

/// Physical storage of one table across the simulated MPP cluster.
///
/// Mirrors GPDB's layout (paper §3.2): each leaf partition is its own
/// physical storage unit, sliced across segments by the table's distribution.
/// Unpartitioned tables have a single unit keyed by the table OID itself.
///
/// Each slice is summarized by chunk-level zone maps (see synopsis.h): every
/// kChunkRows-row logical chunk carries per-column min/max/null-count
/// synopses plus a slice-wide rollup, maintained incrementally on inserts and
/// invalidated (then lazily rebuilt) when in-place DML bumps the slice's
/// version counter. Scans consult them through UnitSynopsis to skip chunks a
/// predicate provably cannot match.
///
/// Thread safety (audited for the parallel executor): the const read paths —
/// UnitRows, HasUnit, UnitOids, TotalRows, UnitTotalRows, descriptor — touch
/// only the units_ map, whose shape is fixed at construction, so any number
/// of threads may read concurrently as long as no writer is active. Writers
/// (Insert, InsertBatch, MutableUnitRows) follow the executor's single-writer
/// DML rule: all reads complete at the Gather barrier before DML applies, and
/// only one thread applies it. The index path (CreateIndex, HasIndex,
/// IndexLookup, IndexRangeSeek, IndexOrderedWalk, IndexMinMax) builds lazily
/// and therefore mutates under concurrent readers; it is internally
/// serialized by index_mu_. UnitSynopsis likewise rebuilds
/// lazily under concurrent readers: within one query the executor's
/// segment-ownership contract confines each slice to one thread, but
/// concurrent queries scan the same slice from different threads, so the
/// freshness check and rebuild are serialized by synopsis_mu_ (the returned
/// reference is then stable until the next DML, which the Database-level
/// writer lock keeps out of any read's lifetime).
class TableStore {
 public:
  /// Rows per logical chunk (matches the vectorized executor's batch size).
  static constexpr size_t kChunkRows = kStorageChunkRows;

  TableStore(const TableDescriptor* desc, int num_segments);

  const TableDescriptor& descriptor() const { return *desc_; }
  int num_segments() const { return num_segments_; }

  /// Routes a row to its leaf partition (f_T) and segment (distribution) and
  /// appends it. Fails with OutOfRange if the partition scheme maps the row
  /// to the invalid partition ⊥.
  Status Insert(const Row& row);
  Status InsertBatch(const std::vector<Row>& rows);

  /// Rows of one storage unit on one segment. `unit_oid` must be a leaf
  /// partition OID (partitioned) or the table OID (unpartitioned).
  /// Safe for concurrent readers (no writer active).
  const std::vector<Row>& UnitRows(Oid unit_oid, int segment) const;
  std::vector<Row>* MutableUnitRows(Oid unit_oid, int segment);

  /// Chunk synopses of one slice, rebuilt here if in-place DML staled them.
  /// Caller must be the thread owning the segment's slices (the UnitRows
  /// contract); the returned reference is valid until the slice next mutates.
  const SliceSynopsis& UnitSynopsis(Oid unit_oid, int segment) const;

  /// All storage-unit OIDs (leaf partitions, or the table itself), in
  /// ascending OID order — deterministic across platforms and libstdc++
  /// versions, unlike iterating the units_ hash map.
  std::vector<Oid> UnitOids() const;

  bool HasUnit(Oid unit_oid) const { return units_.count(unit_oid) > 0; }

  size_t TotalRows() const;
  size_t UnitTotalRows(Oid unit_oid) const;

  /// Declares an index on a schema column. Indexes build lazily per
  /// (unit, segment) at first lookup and rebuild automatically after the
  /// slice mutates (inserts or in-place DML edits bump a version counter).
  /// Safe to call concurrently (idempotent, serialized on index_mu_).
  Status CreateIndex(int column);
  bool HasIndex(int column) const;

  /// Equality seek: positions (into UnitRows(unit_oid, segment)) of rows
  /// whose `column` value equals `key`. The index must exist. Safe for
  /// concurrent callers: lazy (re)builds are serialized on index_mu_ and the
  /// result is returned by value.
  std::vector<size_t> IndexLookup(Oid unit_oid, int segment, int column,
                                  const Datum& key);

  /// Range seek: positions of rows whose `column` value falls in [lo, hi]
  /// (each end optionally exclusive or unbounded), returned in ascending
  /// storage order — the same order a full scan plus filter visits them.
  /// NULL column values never match (SQL comparison semantics), and a NULL
  /// bound value on a non-unbounded end matches nothing. Same concurrency
  /// contract as IndexLookup.
  std::vector<size_t> IndexRangeSeek(Oid unit_oid, int segment, int column,
                                     const IndexBound& lo, const IndexBound& hi);

  /// Ordered walk: positions of the first `limit` rows of the slice in
  /// index-key order — ascending (NULLs first) or descending (NULLs last),
  /// matching the executor's Sort comparator — with equal keys in storage
  /// order either way, so the walk's prefix is exactly the stable-sorted
  /// slice's prefix. `limit` == 0 means the whole slice. Same concurrency
  /// contract as IndexLookup.
  std::vector<size_t> IndexOrderedWalk(Oid unit_oid, int segment, int column,
                                       bool ascending_order, size_t limit);

  /// Position of the row holding the minimum (or maximum) non-null value of
  /// `column` in the slice — the first entry of the run in key order, so the
  /// result is deterministic. nullopt when the slice is empty or all-NULL.
  /// Same concurrency contract as IndexLookup.
  std::optional<size_t> IndexMinMax(Oid unit_oid, int segment, int column,
                                    bool minimum);

  /// True if the slice's synopsis reflects its current version — i.e. the
  /// next UnitSynopsis read returns it without a rebuild. The executor's
  /// memory accountant uses this to charge (or shed) rebuild scratch before
  /// asking for the synopsis.
  bool SynopsisFresh(Oid unit_oid, int segment) const;

  /// Effective storage orientation of one unit (catalog default plus per-leaf
  /// overrides; see TableDescriptor::UnitOrientation).
  StorageOrientation UnitOrientation(Oid unit_oid) const {
    return desc_->UnitOrientation(unit_oid);
  }

  /// Encoded column image of one slice, or nullptr for row-oriented units.
  /// Same lazy contract as UnitSynopsis: (re)encoded here when the slice
  /// version moved (serialized on colstore_mu_); the returned pointer is
  /// stable until the slice next mutates, which the Database-level writer
  /// lock keeps out of any concurrent read's lifetime.
  const SliceColumns* UnitColumns(Oid unit_oid, int segment) const;

  /// True if the slice's encoded image reflects its current version (always
  /// true for row-oriented units, which keep none). The executor charges or
  /// sheds the encode scratch before asking, like SynopsisFresh.
  bool ColumnsFresh(Oid unit_oid, int segment) const;

  /// Exact distinct count of `column`'s non-null values, provable from the
  /// encoded images alone: every non-empty slice must be column-oriented,
  /// fresh, and hold the column purely dictionary- or run-length-encoded;
  /// the result is the size of the merged value set. nullopt when not
  /// provable (the CardinalityEstimator then falls back to its rollup
  /// estimate).
  std::optional<size_t> ExactDistinctFromDictionaries(int column) const;

 private:
  /// Locates (building or rebuilding if stale) the per-slice index for
  /// `column`. Caller must hold index_mu_; the returned reference is valid
  /// while the lock is held.
  UnitIndex& EnsureUnitIndex(Oid unit_oid, int segment, int column);

  int SegmentForRow(const Row& row);
  void BumpVersion(Oid unit_oid, int segment);
  /// Current version counter of one slice (0 if never mutated).
  uint64_t SliceVersion(Oid unit_oid, int segment) const;
  /// Folds a just-appended row into the slice's synopsis and stamps it with
  /// the current version. `was_fresh` is the SynopsisFresh value from before
  /// this mutation's BumpVersion: a synopsis already staled by earlier
  /// in-place DML must not be patched incrementally — it stays stale until
  /// the next UnitSynopsis read rebuilds it from the rows.
  void SynopsisAppend(Oid unit_oid, int segment, const Row& row, bool was_fresh);

  const TableDescriptor* desc_;
  int num_segments_;
  uint64_t round_robin_ = 0;
  /// unit oid -> one row vector per segment.
  std::unordered_map<Oid, std::vector<std::vector<Row>>> units_;
  /// Mutation counters, aligned with units_ ((unit, segment) granularity).
  std::unordered_map<Oid, std::vector<uint64_t>> versions_;
  /// Chunk synopses, aligned with units_. Shape fixed at construction;
  /// mutable for the lazy rebuild in UnitSynopsis (serialized by
  /// synopsis_mu_, see class comment).
  mutable std::unordered_map<Oid, std::vector<SliceSynopsis>> synopses_;
  /// Serializes the lazy synopsis rebuild and freshness checks: within one
  /// query the segment-ownership contract already confines a slice to one
  /// thread, but concurrent *queries* scan the same slice from different
  /// threads and must not both rebuild a synopsis staled by earlier DML.
  mutable std::mutex synopsis_mu_;
  /// Encoded column images, aligned with units_. Only populated for
  /// column-oriented units; mutable for the lazy (re)encode in UnitColumns
  /// (serialized by colstore_mu_, same pattern as the synopses).
  mutable std::unordered_map<Oid, std::vector<SliceColumns>> column_cache_;
  mutable std::mutex colstore_mu_;
  /// Serializes the lazily-built index structures below, which concurrent
  /// read-only queries mutate as a side effect.
  mutable std::mutex index_mu_;
  /// column -> unit oid -> per-segment index.
  std::map<int, std::unordered_map<Oid, std::vector<UnitIndex>>> indexes_;
};

/// Owns the TableStores of all tables in a catalog-backed database instance.
class StorageEngine {
 public:
  explicit StorageEngine(int num_segments) : num_segments_(num_segments) {}
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  int num_segments() const { return num_segments_; }

  /// Allocates (empty) storage for the table; call once after catalog DDL.
  Status CreateStorage(const TableDescriptor* desc);

  TableStore* GetStore(Oid table_oid);
  const TableStore* GetStore(Oid table_oid) const;

  /// Releases a table's storage. Fails if absent.
  Status DropStorage(Oid table_oid);

 private:
  int num_segments_;
  std::unordered_map<Oid, std::unique_ptr<TableStore>> stores_;
};

}  // namespace mppdb

#endif  // MPPDB_STORAGE_STORAGE_H_
