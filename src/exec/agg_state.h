#ifndef MPPDB_EXEC_AGG_STATE_H_
#define MPPDB_EXEC_AGG_STATE_H_

#include "common/status.h"
#include "expr/expr.h"
#include "types/datum.h"

namespace mppdb {

/// Running state of one aggregate within one group. Shared by the
/// row-at-a-time and vectorized HashAgg so accumulation (including double
/// summation order) is the same code in both paths — a prerequisite for the
/// vectorized path's bit-identical-output guarantee.
struct AggState {
  int64_t count = 0;          // non-null inputs (or all rows for count(*))
  double sum_double = 0;
  int64_t sum_int = 0;
  bool saw_double = false;
  bool saw_value = false;
  Datum min;
  Datum max;
};

/// Folds one non-null input value into the state. Not used for count(*)
/// (which has no argument; callers bump `count` directly).
inline Status AccumulateAgg(AggState& state, AggFunc func, const Datum& v) {
  ++state.count;
  switch (func) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (!IsNumeric(v.type())) {
        return Status::ExecutionError("sum/avg over a non-numeric value");
      }
      if (v.type() == TypeId::kDouble) {
        state.saw_double = true;
        state.sum_double += v.double_value();
      } else {
        state.sum_int += v.AsInt64();
        state.sum_double += static_cast<double>(v.AsInt64());
      }
      break;
    case AggFunc::kMin:
      if (!state.saw_value || Datum::Compare(v, state.min) < 0) state.min = v;
      break;
    case AggFunc::kMax:
      if (!state.saw_value || Datum::Compare(v, state.max) > 0) state.max = v;
      break;
    default:
      break;
  }
  state.saw_value = true;
  return Status::OK();
}

/// Final output value of one aggregate.
inline Datum FinalizeAgg(const AggState& state, AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Datum::Int64(state.count);
    case AggFunc::kSum:
      if (state.count == 0) return Datum::Null();
      if (state.saw_double) return Datum::Double(state.sum_double);
      return Datum::Int64(state.sum_int);
    case AggFunc::kAvg:
      if (state.count == 0) return Datum::Null();
      return Datum::Double(state.sum_double / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.saw_value ? state.min : Datum::Null();
    case AggFunc::kMax:
      return state.saw_value ? state.max : Datum::Null();
  }
  return Datum::Null();
}

}  // namespace mppdb

#endif  // MPPDB_EXEC_AGG_STATE_H_
