// Zone-map data skipping for the row execution path, plus the scan-fragment
// iteration shared with the vectorized fused filter (src/exec/vectorized.cc).
//
// The skipping filter is a drop-in replacement for Filter-over-scan subtrees:
// same output rows in the same order, same error outcomes, same logical
// ExecStats (partitions_scanned / tuples_scanned count skipped chunks too) —
// only the chunks_total / chunks_skipped / units_skipped counters and the
// work actually performed differ. Soundness rests on the maximal-safe-prefix
// rule in expr/sargable.h: a chunk is skipped only when some prefix conjunct
// is provably FALSE on every row and every conjunct up to it provably cannot
// raise an error on the chunk.

#include <algorithm>

#include "common/macros.h"
#include "exec/executor.h"
#include "expr/encoded_eval.h"
#include "expr/sargable.h"
#include "expr/vector_eval.h"

namespace mppdb {

// The synopsis chunk grid must coincide with the vectorized batch grid, so
// the fused kernel path can skip per batch without re-chunking.
static_assert(TableStore::kChunkRows == KernelContext::kDefaultChunkRows,
              "storage chunk size must match the vectorized batch size");

Status Executor::ForEachScanUnit(
    const ScanFragment& frag, int segment,
    const std::function<Status(const TableStore&, Oid, Oid)>& fn) {
  for (const PhysicalNode* scan : frag.scans) {
    switch (scan->kind()) {
      case PhysNodeKind::kTableScan: {
        const auto& ts = static_cast<const TableScanNode&>(*scan);
        const TableStore* store = storage_->GetStore(ts.table_oid());
        if (store == nullptr) {
          return Status::ExecutionError("no storage for table oid " +
                                        std::to_string(ts.table_oid()));
        }
        // Replicated base tables produce rows on one segment only.
        if (store->descriptor().distribution == TableDistribution::kReplicated &&
            segment != 0) {
          break;
        }
        MPPDB_RETURN_IF_ERROR(fn(*store, ts.table_oid(), ts.unit_oid()));
        break;
      }
      case PhysNodeKind::kCheckedPartScan: {
        const auto& cs = static_cast<const CheckedPartScanNode&>(*scan);
        const TableStore* store = storage_->GetStore(cs.table_oid());
        if (store == nullptr) {
          return Status::ExecutionError("no storage for table oid " +
                                        std::to_string(cs.table_oid()));
        }
        if (!hub_.HasChannel(segment, cs.scan_id())) {
          return Status::ExecutionError(
              "CheckedPartScan: no partition parameter for scan id " +
              std::to_string(cs.scan_id()));
        }
        const std::vector<Oid>& selected = hub_.Selected(segment, cs.scan_id());
        if (std::find(selected.begin(), selected.end(), cs.leaf_oid()) !=
            selected.end()) {
          MPPDB_RETURN_IF_ERROR(fn(*store, cs.table_oid(), cs.leaf_oid()));
        }
        break;
      }
      case PhysNodeKind::kDynamicScan: {
        const auto& ds = static_cast<const DynamicScanNode&>(*scan);
        const TableStore* store = storage_->GetStore(ds.table_oid());
        if (store == nullptr) {
          return Status::ExecutionError("no storage for table oid " +
                                        std::to_string(ds.table_oid()));
        }
        if (!hub_.HasChannel(segment, ds.scan_id())) {
          return Status::ExecutionError(
              "DynamicScan executed before its PartitionSelector (scan id " +
              std::to_string(ds.scan_id()) + ", segment " + std::to_string(segment) +
              ")");
        }
        if (store->descriptor().distribution == TableDistribution::kReplicated &&
            segment != 0) {
          break;
        }
        for (Oid oid : hub_.Selected(segment, ds.scan_id())) {
          if (!store->HasUnit(oid)) {
            return Status::ExecutionError("selected partition oid " +
                                          std::to_string(oid) +
                                          " is not a leaf of table " +
                                          std::to_string(ds.table_oid()));
          }
          MPPDB_RETURN_IF_ERROR(fn(*store, ds.table_oid(), oid));
        }
        break;
      }
      default:
        return Status::Internal("unexpected scan kind in fused filter fragment");
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> Executor::ExecFilterRowSkip(const FilterNode& node,
                                                     const ScanFragment& frag,
                                                     int segment) {
  for (size_t i = 0; i < frag.prefix.size(); ++i) {
    Result<std::vector<Row>> discarded = ExecNode(frag.prefix[i], segment);
    if (!discarded.ok()) {
      if (parallel_run_ && IsSuspendedStatus(discarded.status())) {
        // Prefix outputs are discarded; mark completed ones done so the
        // re-walk skips their side-effecting subtrees (see kSequence in
        // executor.cc).
        SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
        for (size_t j = 0; j < i; ++j) memo.done.insert(frag.prefix[j].get());
      }
      return discarded.status();
    }
  }

  ColumnLayout layout = node.child(0)->OutputLayout();
  CompiledSargable compiled;
  if (options_.data_skipping) {
    compiled = CompileSargable(node.sargable(), layout);
  }
  const bool can_prune = compiled.CanPrune();
  // Exactly-compiled conjunct prefix for column-oriented units: evaluated
  // directly on encoded chunks, with the residual (and join-filter probes)
  // running only on late-materialized survivors.
  const EncodedPredicate encoded =
      options_.encoded_eval ? CompileEncodedPredicate(node.predicate(), layout)
                            : EncodedPredicate();
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, layout, segment));
  std::vector<Row> out;

  // Tests a predicate survivor against the bound join filters; returns true
  // if the row survives those too (and records the probe counters).
  auto probe_row = [&](const Row& row, ExecStats& stats) {
    if (join_filters.empty()) return true;
    ++stats.joinfilter_probed;
    for (const BoundJoinFilter& filter : join_filters) {
      if (filter.summary->RowMayMatch(row, filter.key_positions)) continue;
      ++stats.joinfilter_rows_rejected;
      if (filter.below_motion) {
        ++stats.rows_moved;  // rows_moved stays logical
        ++stats.joinfilter_motion_rows_saved;
      }
      return false;
    }
    return true;
  };

  // A join filter may skip a whole chunk only when (a) no Motion sits between
  // this Filter and the join — below a Motion the dropped rows' rows_moved
  // compensation needs exact per-row predicate outcomes — and (b) the whole
  // predicate is provably error-free on the chunk: unlike a predicate-driven
  // skip, the dropped rows may *satisfy* the predicate, so no conjunct may be
  // allowed to error behind the skip.
  auto join_filter_chunk_skip = [&](const ChunkSynopsis& chunk,
                                    ExecStats& stats) {
    if (join_filters.empty()) return false;
    if (!SynopsisErrorFree(node.sargable(), compiled, chunk)) return false;
    for (const BoundJoinFilter& filter : join_filters) {
      if (filter.below_motion) continue;
      if (filter.summary->ChunkProvablyDisjoint(chunk, filter.key_positions)) {
        ++stats.joinfilter_chunks_skipped;
        return true;
      }
    }
    return false;
  };

  // The chunk loop is morsel-ranged (RunMorselScan): chunk-aligned
  // sub-ranges of the slice run as stealable tasks, each accumulating into
  // its own stats shard and row slot, concatenated in range order. A null
  // synopsis (non-sargable predicate with no join filters, or a shed
  // rebuild) degrades each chunk to the plain unskipped scan.
  auto scan_unit_filtered = [&](const TableStore& store, Oid table_oid,
                                Oid unit_oid) -> Status {
    const std::vector<Row>& rows = store.UnitRows(unit_oid, segment);
    ExecStats& seg_stats = seg_stats_[static_cast<size_t>(segment)];
    seg_stats.partitions_scanned[table_oid].insert(unit_oid);
    seg_stats.tuples_scanned += rows.size();
    if (rows.empty()) return Status::OK();
    const SliceSynopsis* synopsis = nullptr;
    if (options_.data_skipping) {
      // chunks_total is pure arithmetic so the non-sargable case never
      // forces a synopsis (re)build it would not use.
      seg_stats.chunks_total +=
          (rows.size() + TableStore::kChunkRows - 1) / TableStore::kChunkRows;
      if (can_prune || !join_filters.empty()) {
        // A shed synopsis rebuild (budget pressure) returns null: scan
        // unskipped. Acquired here, in the spawning task (the lazy rebuild
        // is owner-confined); morsel bodies only read it.
        synopsis = AcquireSynopsis(store, unit_oid, segment);
      }
    }
    if (synopsis != nullptr) {
      MPPDB_CHECK(synopsis->rollup.row_count == rows.size());
      if (can_prune && SynopsisCanSkip(compiled, synopsis->rollup)) {
        ++seg_stats.units_skipped;
        seg_stats.chunks_skipped += synopsis->chunks.size();
        return Status::OK();
      }
    }
    // Encoded image of column-oriented units (null for row-oriented ones, a
    // shed re-encode, or a predicate with no compilable prefix). Acquired in
    // the spawning task like the synopsis; morsel bodies only read it.
    const SliceColumns* cols =
        encoded.HasTerms() ? AcquireColumns(store, unit_oid, segment) : nullptr;
    if (cols != nullptr) MPPDB_CHECK(cols->row_count == rows.size());
    auto body = [this, segment, &rows, &node, &layout, &compiled, can_prune,
                 &probe_row, &join_filter_chunk_skip, &encoded, cols,
                 synopsis](size_t begin, size_t end, ExecStats* stats,
                           std::vector<Row>* mout) -> Status {
      for (size_t base = begin; base < end; base += TableStore::kChunkRows) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
        const size_t chunk_end = std::min(end, base + TableStore::kChunkRows);
        if (synopsis != nullptr) {
          const ChunkSynopsis& chunk =
              synopsis->chunks[base / TableStore::kChunkRows];
          // Predicate-driven skips run first so chunks_skipped is identical
          // with join filters on or off; only then may a join filter claim
          // the chunk.
          if (can_prune && SynopsisCanSkip(compiled, chunk)) {
            ++stats->chunks_skipped;
            continue;
          }
          if (join_filter_chunk_skip(chunk, *stats)) continue;
        }
        const size_t chunk_idx = base / TableStore::kChunkRows;
        if (cols != nullptr && EncodedChunkEligible(encoded, *cols, chunk_idx)) {
          // Encoded fast path: the compiled prefix runs on the encoded
          // chunk; only survivors are materialized from the row image, for
          // the residual, the join-filter probes, and the output copy.
          ++stats->chunks_encoded_eval;
          stats->encoded_bytes_scanned += cols->ChunkEncodedBytes(chunk_idx);
          const bool has_residual = encoded.residual != nullptr;
          SelVec sel;
          std::vector<char> pure;
          EvalEncodedPredicate(encoded, *cols, chunk_idx, base,
                               chunk_end - base, &sel,
                               has_residual ? &pure : nullptr);
          stats->rows_late_materialized += sel.size();
          for (size_t s = 0; s < sel.size(); ++s) {
            const Row& row = rows[sel[s]];
            bool keep = true;
            if (has_residual) {
              MPPDB_ASSIGN_OR_RETURN(
                  bool residual_keep,
                  EvalPredicate(encoded.residual, layout, row));
              keep = residual_keep && pure[s] != 0;
            }
            if (keep && probe_row(row, *stats)) mout->push_back(row);
          }
          continue;
        }
        for (size_t i = base; i < chunk_end; ++i) {
          MPPDB_ASSIGN_OR_RETURN(bool keep,
                                 EvalPredicate(node.predicate(), layout, rows[i]));
          if (keep && probe_row(rows[i], *stats)) mout->push_back(rows[i]);
        }
      }
      return Status::OK();
    };
    return RunMorselScan(segment, rows.size(), body, &out);
  };

  MPPDB_RETURN_IF_ERROR(ForEachScanUnit(frag, segment, scan_unit_filtered));
  return out;
}

}  // namespace mppdb
