#ifndef MPPDB_EXEC_PLAN_H_
#define MPPDB_EXEC_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/sargable.h"
#include "storage/storage.h"

namespace mppdb {

/// Physical operator kinds. The paper's three new operators are
/// kPartitionSelector, kDynamicScan, and kSequence (§2.2); kCheckedPartScan
/// models the legacy Planner's parameter-checked per-partition scans, whose
/// plans must enumerate every partition (§4.4.2).
enum class PhysNodeKind {
  kTableScan,
  kCheckedPartScan,
  kDynamicScan,
  kDynamicIndexScan,
  kPartitionSelector,
  kSequence,
  kAppend,
  kFilter,
  kProject,
  kHashJoin,
  kNestedLoopJoin,
  kIndexNLJoin,
  kHashAgg,
  kSort,
  kLimit,
  kTopN,
  kMotion,
  kValues,
  kInsert,
  kUpdate,
  kDelete,
};

const char* PhysNodeKindToString(PhysNodeKind kind);

/// kInner joins emit build++probe column concatenations for every match.
/// kSemi preserves each probe-side (children[1]) row with at least one match
/// on the build side — the shape produced for IN (subquery) predicates.
enum class JoinType { kInner, kSemi };

/// Motion flavors (paper §3.1): the boundaries between plan slices that run
/// in different processes in a real MPP system.
enum class MotionKind { kGather, kRedistribute, kBroadcast };

class PhysicalNode;
using PhysPtr = std::shared_ptr<const PhysicalNode>;

/// Producer half of a runtime join filter: attached by the optimizer to the
/// hash join whose build keys are summarized (publishing on the build
/// segment's local hub channel), or to the Motion feeding the join's build
/// side (publishing a cross-segment merged summary on the global channel —
/// required when the consumer sits below a probe-side Motion, see
/// PartitionPropagationHub::PublishGlobalJoinFilter).
struct JoinFilterSpec {
  int filter_id = -1;
  /// Build-key columns, resolved in the carrying node's input layout (the
  /// join's build child output, or the Motion child's output).
  std::vector<ColRefId> key_columns;
  /// Optimizer estimate of build rows (bloom sizing hint / cost-gate trace).
  double build_rows_est = 0;
  /// Publish on the global (cross-segment) channel instead of the local one.
  bool global = false;
};

/// Consumer half: attached to a probe-side Filter (applied after its full
/// predicate, so predicate errors and skip decisions are unchanged) or to a
/// bare probe-side scan. `key_columns` are the probe keys in the carrying
/// node's output layout.
struct JoinFilterProbe {
  int filter_id = -1;
  std::vector<ColRefId> key_columns;
  /// Consume the cross-segment summary (consumer is below a probe-side
  /// Motion, so local per-segment summaries would be unsound).
  bool global = false;
  /// Rows rejected here would otherwise have been exchanged over a Motion:
  /// the executor keeps rows_moved logical (counts them as moved) and
  /// reports the savings in joinfilter_motion_rows_saved instead.
  bool below_motion = false;
};

/// Join-filter annotations carried by any physical node. Orthogonal to the
/// node's identity: Describe()/SerializePlan output is unchanged, and clones
/// (CloneWithChildren, expression rewrites) preserve them.
struct JoinFilterAnnotations {
  std::vector<JoinFilterSpec> publishes;
  std::vector<JoinFilterProbe> probes;

  bool empty() const { return publishes.empty() && probes.empty(); }
};

/// Base class of immutable physical plan nodes. Execution-order convention
/// (paper §2.2/§2.3): children execute left to right — children[0] of a join
/// is the build/outer side and runs to completion first, which is what makes
/// PartitionSelector placement on children[0] able to feed a DynamicScan in
/// children[1].
class PhysicalNode {
 public:
  PhysicalNode(PhysNodeKind kind, std::vector<PhysPtr> children)
      : kind_(kind), children_(std::move(children)) {}
  virtual ~PhysicalNode() = default;

  PhysNodeKind kind() const { return kind_; }
  const std::vector<PhysPtr>& children() const { return children_; }
  const PhysPtr& child(size_t i) const { return children_[i]; }

  /// ColRefIds of this node's output columns, in row order.
  virtual std::vector<ColRefId> OutputIds() const = 0;

  ColumnLayout OutputLayout() const { return ColumnLayout(OutputIds()); }

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Runtime join-filter annotations (empty on almost every node). Set once
  /// by the optimizer's placement pass on freshly built copies; plan
  /// rewrites copy them through CopyJoinFiltersFrom.
  const JoinFilterAnnotations& join_filters() const { return join_filters_; }
  void set_join_filters(JoinFilterAnnotations annotations) {
    join_filters_ = std::move(annotations);
  }
  void CopyJoinFiltersFrom(const PhysicalNode& other) {
    join_filters_ = other.join_filters_;
  }

 private:
  PhysNodeKind kind_;
  std::vector<PhysPtr> children_;
  JoinFilterAnnotations join_filters_;
};

/// Scan of a single storage unit: an unpartitioned table (unit == table oid)
/// or one explicit leaf partition (legacy Planner plans reference leaves
/// directly, one scan node per partition).
class TableScanNode : public PhysicalNode {
 public:
  TableScanNode(Oid table_oid, Oid unit_oid, std::vector<ColRefId> column_ids,
                std::vector<ColRefId> rowid_ids = {})
      : PhysicalNode(PhysNodeKind::kTableScan, {}),
        table_oid_(table_oid),
        unit_oid_(unit_oid),
        column_ids_(std::move(column_ids)),
        rowid_ids_(std::move(rowid_ids)) {}

  Oid table_oid() const { return table_oid_; }
  Oid unit_oid() const { return unit_oid_; }
  const std::vector<ColRefId>& column_ids() const { return column_ids_; }
  const std::vector<ColRefId>& rowid_ids() const { return rowid_ids_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  Oid table_oid_;
  Oid unit_oid_;
  std::vector<ColRefId> column_ids_;
  /// If non-empty: 3 hidden columns (unit oid, segment, row index) for DML.
  std::vector<ColRefId> rowid_ids_;
};

/// Legacy Planner's dynamic elimination: the plan lists one such node per
/// leaf; at runtime the node consults the propagation channel `scan_id` and
/// scans its leaf only if the leaf was selected. Plan size stays linear in
/// the number of partitions (paper §4.4.2).
class CheckedPartScanNode : public PhysicalNode {
 public:
  CheckedPartScanNode(Oid table_oid, Oid leaf_oid, int scan_id,
                      std::vector<ColRefId> column_ids)
      : PhysicalNode(PhysNodeKind::kCheckedPartScan, {}),
        table_oid_(table_oid),
        leaf_oid_(leaf_oid),
        scan_id_(scan_id),
        column_ids_(std::move(column_ids)) {}

  Oid table_oid() const { return table_oid_; }
  Oid leaf_oid() const { return leaf_oid_; }
  int scan_id() const { return scan_id_; }
  const std::vector<ColRefId>& column_ids() const { return column_ids_; }

  std::vector<ColRefId> OutputIds() const override { return column_ids_; }
  std::string Describe() const override;

 private:
  Oid table_oid_;
  Oid leaf_oid_;
  int scan_id_;
  std::vector<ColRefId> column_ids_;
};

/// The paper's DynamicScan (§2.2): consumes partition OIDs pushed by the
/// PartitionSelector with the same scan_id and scans exactly those leaves.
/// Plan size is independent of the partition count.
class DynamicScanNode : public PhysicalNode {
 public:
  DynamicScanNode(Oid table_oid, int scan_id, std::vector<ColRefId> column_ids,
                  std::vector<ColRefId> rowid_ids = {})
      : PhysicalNode(PhysNodeKind::kDynamicScan, {}),
        table_oid_(table_oid),
        scan_id_(scan_id),
        column_ids_(std::move(column_ids)),
        rowid_ids_(std::move(rowid_ids)) {}

  Oid table_oid() const { return table_oid_; }
  int scan_id() const { return scan_id_; }
  const std::vector<ColRefId>& column_ids() const { return column_ids_; }
  const std::vector<ColRefId>& rowid_ids() const { return rowid_ids_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  Oid table_oid_;
  int scan_id_;
  std::vector<ColRefId> column_ids_;
  std::vector<ColRefId> rowid_ids_;
};

/// Access mode of a DynamicIndexScanNode.
enum class IndexScanMode : uint8_t {
  kRangeSeek,    ///< sargable key range, residual filter, storage-order output
  kOrderedWalk,  ///< key-ordered iteration with per-unit early stop
  kMinMax,       ///< first (min) or last (max) live non-null entry per unit
};

/// Partition-aware ordered index access (the gporca DynamicIndexGet family):
/// scans the leaves a PartitionSelector with the same scan_id selected — or
/// every unit when scan_id is -1 (unpartitioned table) — through each slice's
/// secondary index on `index_column` instead of reading the slice.
///
///  * kRangeSeek emits rows whose key falls in [lo, hi] in storage order and
///    then applies the full `residual` predicate, so output rows, order, and
///    error behavior are identical to Filter over the corresponding scan.
///  * kOrderedWalk emits each unit's first `per_unit_limit` rows in key order
///    (`ascending`; ties in storage order) — the per-unit input of a bounded
///    top-N merge; `residual` must be null.
///  * kMinMax emits at most one candidate row per unit: the one holding the
///    slice's minimum (`ascending`) or maximum (!`ascending`) non-null key.
///
/// Only the new index counters (ExecStats::index_seeks / index_rows_read) and
/// the work performed distinguish its execution from the scan it replaces;
/// partitions_scanned and tuples_scanned stay logical.
class DynamicIndexScanNode : public PhysicalNode {
 public:
  DynamicIndexScanNode(Oid table_oid, int scan_id, std::vector<ColRefId> column_ids,
                       int index_column, IndexScanMode mode, IndexBound lo,
                       IndexBound hi, ExprPtr residual, bool ascending,
                       size_t per_unit_limit)
      : PhysicalNode(PhysNodeKind::kDynamicIndexScan, {}),
        table_oid_(table_oid),
        scan_id_(scan_id),
        column_ids_(std::move(column_ids)),
        index_column_(index_column),
        mode_(mode),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        residual_(std::move(residual)),
        ascending_(ascending),
        per_unit_limit_(per_unit_limit) {}

  Oid table_oid() const { return table_oid_; }
  /// PartitionSelector pairing id, or -1 for an unpartitioned table (every
  /// unit — i.e. the single table-oid unit — is scanned, no hub channel).
  int scan_id() const { return scan_id_; }
  const std::vector<ColRefId>& column_ids() const { return column_ids_; }
  /// Schema position of the indexed column.
  int index_column() const { return index_column_; }
  IndexScanMode mode() const { return mode_; }
  const IndexBound& lo() const { return lo_; }
  const IndexBound& hi() const { return hi_; }
  /// Full original predicate re-applied to seek survivors (kRangeSeek only).
  const ExprPtr& residual() const { return residual_; }
  bool ascending() const { return ascending_; }
  /// Early-stop row cap per (unit, segment) walk; 0 = uncapped.
  size_t per_unit_limit() const { return per_unit_limit_; }

  std::vector<ColRefId> OutputIds() const override { return column_ids_; }
  std::string Describe() const override;

 private:
  Oid table_oid_;
  int scan_id_;
  std::vector<ColRefId> column_ids_;
  int index_column_;
  IndexScanMode mode_;
  IndexBound lo_;
  IndexBound hi_;
  ExprPtr residual_;
  bool ascending_;
  size_t per_unit_limit_;
};

/// The paper's PartitionSelector (§2.2, extended for multi-level in §2.4).
/// Side-effecting operator: evaluates its per-level predicates (with column
/// references bound from the current input row, if it has a child), computes
/// qualifying leaf OIDs via f*_T, and pushes them to the DynamicScan with the
/// same scan_id. Pass-through for tuples when it has a child; produces
/// nothing when standalone.
class PartitionSelectorNode : public PhysicalNode {
 public:
  PartitionSelectorNode(Oid table_oid, int scan_id, std::vector<ColRefId> level_keys,
                        std::vector<ExprPtr> level_predicates, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kPartitionSelector,
                     child == nullptr ? std::vector<PhysPtr>{}
                                      : std::vector<PhysPtr>{std::move(child)}),
        table_oid_(table_oid),
        scan_id_(scan_id),
        level_keys_(std::move(level_keys)),
        level_predicates_(std::move(level_predicates)) {}

  Oid table_oid() const { return table_oid_; }
  int scan_id() const { return scan_id_; }
  /// ColRefIds of the paired DynamicScan's partition-key columns, one per
  /// partitioning level; the level predicates reference these ids.
  const std::vector<ColRefId>& level_keys() const { return level_keys_; }
  /// Per-level predicate or nullptr; an all-null list means "select all".
  const std::vector<ExprPtr>& level_predicates() const { return level_predicates_; }
  bool HasChild() const { return !children().empty(); }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  Oid table_oid_;
  int scan_id_;
  std::vector<ColRefId> level_keys_;
  std::vector<ExprPtr> level_predicates_;
};

/// The paper's Sequence (§2.2): executes children in order, returns the
/// output of the last child.
class SequenceNode : public PhysicalNode {
 public:
  explicit SequenceNode(std::vector<PhysPtr> children)
      : PhysicalNode(PhysNodeKind::kSequence, std::move(children)) {}

  std::vector<ColRefId> OutputIds() const override {
    return children().back()->OutputIds();
  }
  std::string Describe() const override { return "Sequence"; }
};

/// Concatenation of same-layout children (legacy Planner's partition scans).
class AppendNode : public PhysicalNode {
 public:
  explicit AppendNode(std::vector<PhysPtr> children)
      : PhysicalNode(PhysNodeKind::kAppend, std::move(children)) {}

  std::vector<ColRefId> OutputIds() const override {
    return children().front()->OutputIds();
  }
  std::string Describe() const override { return "Append"; }
};

class FilterNode : public PhysicalNode {
 public:
  FilterNode(ExprPtr predicate, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kFilter, {std::move(child)}),
        predicate_(std::move(predicate)),
        sargable_(AnalyzeSargable(predicate_)) {}

  const ExprPtr& predicate() const { return predicate_; }
  /// Sargable analysis of the predicate, computed once at plan build (see
  /// expr/sargable.h). Plans rebuilt after parameter binding re-analyze, so
  /// bound constants become sargable automatically.
  const SargablePredicate& sargable() const { return sargable_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override { return "Filter: " + predicate_->ToString(); }

 private:
  ExprPtr predicate_;
  SargablePredicate sargable_;
};

/// One computed output column of a Project.
struct ProjectItem {
  ExprPtr expr;
  ColRefId output_id;
  std::string name;
};

class ProjectNode : public PhysicalNode {
 public:
  ProjectNode(std::vector<ProjectItem> items, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kProject, {std::move(child)}),
        items_(std::move(items)) {}

  const std::vector<ProjectItem>& items() const { return items_; }
  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  std::vector<ProjectItem> items_;
};

/// Hash join; children[0] is the build side (executes first), children[1]
/// the probe side. Equi-keys are column references into the respective
/// child outputs; `residual` (optional) filters joined rows.
class HashJoinNode : public PhysicalNode {
 public:
  HashJoinNode(JoinType join_type, std::vector<ColRefId> build_keys,
               std::vector<ColRefId> probe_keys, ExprPtr residual, PhysPtr build,
               PhysPtr probe)
      : PhysicalNode(PhysNodeKind::kHashJoin, {std::move(build), std::move(probe)}),
        join_type_(join_type),
        build_keys_(std::move(build_keys)),
        probe_keys_(std::move(probe_keys)),
        residual_(std::move(residual)) {}

  JoinType join_type() const { return join_type_; }
  const std::vector<ColRefId>& build_keys() const { return build_keys_; }
  const std::vector<ColRefId>& probe_keys() const { return probe_keys_; }
  const ExprPtr& residual() const { return residual_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  JoinType join_type_;
  std::vector<ColRefId> build_keys_;
  std::vector<ColRefId> probe_keys_;
  ExprPtr residual_;
};

/// Nested-loop join with an arbitrary predicate; children[0] executes first.
class NestedLoopJoinNode : public PhysicalNode {
 public:
  NestedLoopJoinNode(JoinType join_type, ExprPtr predicate, PhysPtr outer, PhysPtr inner)
      : PhysicalNode(PhysNodeKind::kNestedLoopJoin,
                     {std::move(outer), std::move(inner)}),
        join_type_(join_type),
        predicate_(std::move(predicate)) {}

  JoinType join_type() const { return join_type_; }
  const ExprPtr& predicate() const { return predicate_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  JoinType join_type_;
  ExprPtr predicate_;
};

/// The paper's Index-Join form of the partition-selection model (§2.2):
/// "partition selection by the outer child of the join which computes the
/// keys of partitions to be scanned, while the inner child performs
/// partition scanning by looking up an index defined on partition key".
/// children[0] (the outer) executes first and must be replicated across
/// segments; for each outer tuple the executor routes the key through f_T to
/// the single qualifying partition and seeks the inner table's index there.
/// Supports unpartitioned inner tables too (plain index lookup).
class IndexNLJoinNode : public PhysicalNode {
 public:
  IndexNLJoinNode(PhysPtr outer, Oid inner_table, std::vector<ColRefId> inner_column_ids,
                  int inner_key_column, ColRefId outer_key, ExprPtr residual)
      : PhysicalNode(PhysNodeKind::kIndexNLJoin, {std::move(outer)}),
        inner_table_(inner_table),
        inner_column_ids_(std::move(inner_column_ids)),
        inner_key_column_(inner_key_column),
        outer_key_(outer_key),
        residual_(std::move(residual)) {}

  Oid inner_table() const { return inner_table_; }
  const std::vector<ColRefId>& inner_column_ids() const { return inner_column_ids_; }
  /// Schema position of the indexed (and, if partitioned, partitioning)
  /// column of the inner table.
  int inner_key_column() const { return inner_key_column_; }
  /// Outer column whose values drive the per-tuple routing + index seek.
  ColRefId outer_key() const { return outer_key_; }
  const ExprPtr& residual() const { return residual_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  Oid inner_table_;
  std::vector<ColRefId> inner_column_ids_;
  int inner_key_column_;
  ColRefId outer_key_;
  ExprPtr residual_;
};

/// One aggregate of a HashAgg. `arg` is null for count(*).
struct AggItem {
  AggFunc func;
  ExprPtr arg;
  ColRefId output_id;
  std::string name;
};

/// Hash aggregation over group-by columns (scalar aggregate when empty).
/// Output layout: group columns followed by aggregate results.
class HashAggNode : public PhysicalNode {
 public:
  HashAggNode(std::vector<ColRefId> group_by, std::vector<AggItem> aggs, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kHashAgg, {std::move(child)}),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  const std::vector<ColRefId>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggs() const { return aggs_; }

  std::vector<ColRefId> OutputIds() const override;
  std::string Describe() const override;

 private:
  std::vector<ColRefId> group_by_;
  std::vector<AggItem> aggs_;
};

struct SortKey {
  ColRefId column;
  bool ascending = true;
};

class SortNode : public PhysicalNode {
 public:
  SortNode(std::vector<SortKey> keys, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kSort, {std::move(child)}), keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
};

class LimitNode : public PhysicalNode {
 public:
  LimitNode(size_t limit, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kLimit, {std::move(child)}), limit_(limit) {}

  size_t limit() const { return limit_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override { return "Limit " + std::to_string(limit_); }

 private:
  size_t limit_;
};

/// Bounded top-N: exactly the first `limit` rows of the stable sort of its
/// input by `keys` — bit-identical to Limit over Sort — computed with an
/// O(limit)-row heap instead of materializing the full sorted input. Fused
/// from adjacent Sort+Limit by the optimizer, and the merge stage of the
/// Limit2DynamicIndexScan alternative. Only topn_rows_cut (and the memory
/// not spent) distinguishes its execution from Sort+Limit.
class TopNNode : public PhysicalNode {
 public:
  TopNNode(std::vector<SortKey> keys, size_t limit, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kTopN, {std::move(child)}),
        keys_(std::move(keys)),
        limit_(limit) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  size_t limit() const { return limit_; }
  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
  size_t limit_;
};

/// Slice boundary: redistributes/broadcasts/gathers its child's output
/// across segments (paper §3.1).
class MotionNode : public PhysicalNode {
 public:
  MotionNode(MotionKind motion_kind, std::vector<ColRefId> hash_columns, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kMotion, {std::move(child)}),
        motion_kind_(motion_kind),
        hash_columns_(std::move(hash_columns)) {}

  MotionKind motion_kind() const { return motion_kind_; }
  const std::vector<ColRefId>& hash_columns() const { return hash_columns_; }

  std::vector<ColRefId> OutputIds() const override { return child(0)->OutputIds(); }
  std::string Describe() const override;

 private:
  MotionKind motion_kind_;
  std::vector<ColRefId> hash_columns_;
};

/// Literal rows (INSERT ... VALUES and tests).
class ValuesNode : public PhysicalNode {
 public:
  ValuesNode(std::vector<Row> rows, std::vector<ColRefId> output_ids)
      : PhysicalNode(PhysNodeKind::kValues, {}),
        rows_(std::move(rows)),
        output_ids_(std::move(output_ids)) {}

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<ColRefId> OutputIds() const override { return output_ids_; }
  std::string Describe() const override {
    return "Values (" + std::to_string(rows_.size()) + " rows)";
  }

 private:
  std::vector<Row> rows_;
  std::vector<ColRefId> output_ids_;
};

/// Inserts child rows (positionally matching the table schema) into the
/// table; outputs a single count row.
class InsertNode : public PhysicalNode {
 public:
  InsertNode(Oid table_oid, ColRefId count_output_id, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kInsert, {std::move(child)}),
        table_oid_(table_oid),
        count_output_id_(count_output_id) {}

  Oid table_oid() const { return table_oid_; }
  std::vector<ColRefId> OutputIds() const override { return {count_output_id_}; }
  std::string Describe() const override;

 private:
  Oid table_oid_;
  ColRefId count_output_id_;
};

/// One SET clause of an UPDATE: target column position in the table schema
/// plus the new-value expression (over the child's layout).
struct UpdateSetItem {
  int column_index;
  ExprPtr value;
};

/// Updates rows located via hidden rowid columns in the child output. The
/// child must also carry the target table's current column values (ColRefIds
/// in `table_column_ids`, schema order). Partition-key changes move rows
/// across partitions (delete + reinsert through f_T).
class UpdateNode : public PhysicalNode {
 public:
  UpdateNode(Oid table_oid, std::vector<ColRefId> table_column_ids,
             std::vector<ColRefId> rowid_ids, std::vector<UpdateSetItem> set_items,
             ColRefId count_output_id, PhysPtr child)
      : PhysicalNode(PhysNodeKind::kUpdate, {std::move(child)}),
        table_oid_(table_oid),
        table_column_ids_(std::move(table_column_ids)),
        rowid_ids_(std::move(rowid_ids)),
        set_items_(std::move(set_items)),
        count_output_id_(count_output_id) {}

  Oid table_oid() const { return table_oid_; }
  const std::vector<ColRefId>& table_column_ids() const { return table_column_ids_; }
  const std::vector<ColRefId>& rowid_ids() const { return rowid_ids_; }
  const std::vector<UpdateSetItem>& set_items() const { return set_items_; }

  std::vector<ColRefId> OutputIds() const override { return {count_output_id_}; }
  std::string Describe() const override;

 private:
  Oid table_oid_;
  std::vector<ColRefId> table_column_ids_;
  std::vector<ColRefId> rowid_ids_;
  std::vector<UpdateSetItem> set_items_;
  ColRefId count_output_id_;
};

/// Deletes rows located via hidden rowid columns in the child output.
class DeleteNode : public PhysicalNode {
 public:
  DeleteNode(Oid table_oid, std::vector<ColRefId> rowid_ids, ColRefId count_output_id,
             PhysPtr child)
      : PhysicalNode(PhysNodeKind::kDelete, {std::move(child)}),
        table_oid_(table_oid),
        rowid_ids_(std::move(rowid_ids)),
        count_output_id_(count_output_id) {}

  Oid table_oid() const { return table_oid_; }
  const std::vector<ColRefId>& rowid_ids() const { return rowid_ids_; }

  std::vector<ColRefId> OutputIds() const override { return {count_output_id_}; }
  std::string Describe() const override;

 private:
  Oid table_oid_;
  std::vector<ColRefId> rowid_ids_;
  ColRefId count_output_id_;
};

/// Rebuilds `node` with the given children (which must match the node's
/// arity); shares the original node if the children are unchanged. Clones
/// keep the original's join-filter annotations.
PhysPtr CloneWithChildren(const PhysPtr& node, std::vector<PhysPtr> children);

/// Always-copying clone that replaces the node's join-filter annotations —
/// the placement pass's primitive for annotating nodes inside shared
/// (immutable) plan trees without mutating possibly shared originals.
PhysPtr WithJoinFilters(const PhysPtr& node, std::vector<PhysPtr> children,
                        JoinFilterAnnotations annotations);

/// Multi-line indented rendering of a plan tree (EXPLAIN-style).
std::string PlanToString(const PhysPtr& plan);

/// Deterministic serialization of the full plan; its byte length is the
/// "plan size" metric of the paper's §4.4 experiments.
std::string SerializePlan(const PhysPtr& plan);

}  // namespace mppdb

#endif  // MPPDB_EXEC_PLAN_H_
