#ifndef MPPDB_EXEC_EXECUTOR_H_
#define MPPDB_EXEC_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/plan.h"
#include "runtime/propagation.h"
#include "runtime/query_context.h"
#include "storage/storage.h"

namespace mppdb {

class SpillFileManager;

/// Suspension sentinel for the morsel-driven parallel path (executor.cc):
/// a segment task that reaches a Motion whose peers have not all arrived
/// registers a continuation and unwinds by returning this status through
/// the ordinary error plumbing. Operators with multi-child state to
/// preserve (HashJoin, Append, Sequence, fused-scan prefixes) test for it
/// with IsSuspendedStatus before propagating. Never escapes the executor.
Status SuspendedStatus();
bool IsSuspendedStatus(const Status& status);

/// Counters collected during one query execution; the raw material for the
/// paper's partition-elimination experiments (Table 3, Fig. 16, Fig. 17).
struct ExecStats {
  /// Per table OID: distinct storage units (leaf partitions) actually
  /// scanned, across all segments.
  std::map<Oid, std::set<Oid>> partitions_scanned;
  /// Total tuples read from storage (across segments).
  size_t tuples_scanned = 0;
  /// Total rows shipped through Motion operators.
  size_t rows_moved = 0;
  /// Zone-map skipping counters (Options::data_skipping; all zero when it is
  /// off). tuples_scanned and partitions_scanned stay *logical* — skipped
  /// chunks still count there, so pruning-effect assertions keep one
  /// skipping-independent baseline.
  /// Chunks covered by skip-eligible filtered scans (ceil(rows / kChunkRows)
  /// per slice).
  size_t chunks_total = 0;
  /// Chunks whose synopsis proved the predicate false for every row.
  size_t chunks_skipped = 0;
  /// (unit, segment) slices skipped wholesale via the rollup synopsis; their
  /// chunks are also counted in chunks_skipped.
  size_t units_skipped = 0;

  /// Runtime join-filter counters (Options::join_filters; all zero when the
  /// feature — or the optimizer's placement — is off). Like the zone-map
  /// counters, every pre-existing field above stays identical with filters
  /// on or off: rows_moved stays logical (rows a below-Motion consumer
  /// rejects are still counted as moved, with the savings reported in
  /// joinfilter_motion_rows_saved), and predicate-driven chunk skips are
  /// tested before join-filter skips so chunks_skipped is unchanged.
  /// Summaries published (one per filter per segment, plus one per
  /// cross-segment merge).
  size_t joinfilter_built = 0;
  /// Probe rows tested row-at-a-time against a summary (predicate survivors
  /// at Filter consumers; all slice rows at bare-scan consumers).
  size_t joinfilter_probed = 0;
  /// Probed rows rejected (NULL key, out of build min/max, or bloom miss).
  size_t joinfilter_rows_rejected = 0;
  /// Chunks (and, via rollups, whole slices) skipped because the build-key
  /// min/max proved them disjoint; disjoint from chunks_skipped.
  size_t joinfilter_chunks_skipped = 0;
  /// Rows that were *not* serialized through an exchange because a consumer
  /// below the Motion rejected them (rows_moved still counts them).
  size_t joinfilter_motion_rows_saved = 0;

  /// Memory-budget shedding counters (zero unless the query ran with a
  /// limited QueryContext budget — so the {serial,parallel}x{row,vec}
  /// bit-identity matrix, which runs budget-free, is unaffected). Shedding
  /// order under pressure: join-filter summaries first, stale zone-map
  /// rebuilds second, and only then do mandatory charges fail the query with
  /// kResourceExhausted.
  /// Join-filter summaries not published because their charge was refused.
  size_t joinfilter_shed = 0;
  /// Stale slice synopses scanned without rebuilding because their rebuild
  /// charge was refused (the scan runs unskipped instead).
  size_t synopsis_rebuilds_shed = 0;

  /// Columnar-execution counters (Options::encoded_eval / encoded_motion and
  /// column-oriented partitions; all zero for row-oriented tables, so every
  /// pre-existing stats-identity test is unaffected). Like the zone-map
  /// counters, the logical fields above stay identical across storage
  /// orientations — only these (and time spent) change.
  /// Chunks whose sargable conjunct prefix was evaluated directly on the
  /// encoded column data (dictionary codes, RLE runs, packed integers).
  size_t chunks_encoded_eval = 0;
  /// Rows materialized from the row image after surviving the encoded
  /// prefix (the late-materialization survivors).
  size_t rows_late_materialized = 0;
  /// Encoded bytes of the chunks counted in chunks_encoded_eval (their
  /// plain-row footprint is chunk rows * row width; the ratio is the
  /// bytes-scanned saving).
  size_t encoded_bytes_scanned = 0;
  /// Stale encoded column images scanned via the row image instead because
  /// their re-encode charge was refused under memory pressure.
  size_t colstore_rebuilds_shed = 0;
  /// Rows shipped through Motion in dictionary-coded form (rows_moved still
  /// counts them; this is the subset that travelled encoded).
  size_t motion_rows_encoded = 0;
  /// Approximate wire bytes saved by dictionary-coding Motion buffers
  /// (plain payload estimate minus encoded payload estimate).
  size_t motion_bytes_saved = 0;

  /// Index access-path counters (QueryOptions::enable_index_paths; all zero
  /// when the optimizer picked no index plan). Like the counters above, the
  /// logical fields stay identical when an index plan replaces a scan plan:
  /// partitions_scanned and tuples_scanned count the units and slice rows the
  /// replaced scan would have covered. Only these three counters (and the
  /// chunk/skip counters of the scan the index plan *avoided running*) differ.
  /// Index accesses performed: one per (unit, segment) seek, walk, or min/max
  /// probe.
  size_t index_seeks = 0;
  /// Row positions actually read back from index entries (seek/walk
  /// survivors before residual filtering; at most one per unit for min/max).
  size_t index_rows_read = 0;
  /// Rows a bounded top-N heap discarded without sorting (input rows minus
  /// retained rows, summed across TopN operators).
  size_t topn_rows_cut = 0;

  /// Out-of-core spill counters (Options::spill; all zero when the budget
  /// never refused a mandatory charge). Spilling is stats-only-visible
  /// (DESIGN.md invariant 14): rows are bit-identical to the in-memory
  /// path, only these counters (and time spent) move.
  /// Spill partition files that received at least one row (hash join build
  /// and probe partitions, hash aggregate partitions; sorted runs are
  /// counted in sort_runs instead).
  size_t spill_partitions = 0;
  /// Bytes written to spill files (frame headers included).
  size_t spill_bytes_written = 0;
  /// Bytes read back from spill files.
  size_t spill_bytes_read = 0;
  /// Passes over spilled data: one per hash partitioning fan-out (initial
  /// and each recursive re-partition), one per sort run generation, one per
  /// k-way merge.
  size_t spill_passes = 0;
  /// Sorted runs written by the external merge sort.
  size_t sort_runs = 0;

  /// Distinct partitions scanned for `table_oid` (0 if never scanned).
  size_t PartitionsScanned(Oid table_oid) const;
  /// Sum over all tables.
  size_t TotalPartitionsScanned() const;

  /// Folds another accumulator in (set-union partitions, sum counters).
  /// Used to merge per-segment stats after a parallel run; commutative, so
  /// merge order does not affect the result.
  void MergeFrom(const ExecStats& other);

  bool operator==(const ExecStats& other) const = default;
};

/// Executes physical plans against the simulated MPP cluster.
///
/// Execution model: every plan slice (maximal Motion-free subtree) runs once
/// per segment, operators materialize their outputs, and children execute
/// left to right — so a PartitionSelector placed in children[0] of a join
/// always completes before the DynamicScan in children[1] starts, on the
/// same segment, matching the paper's producer/consumer contract.
///
/// Serial vs parallel mode (Options::parallel):
///  * Serial (the oracle): one thread walks segments 0..S-1 in order. The
///    first segment to reach a Motion node executes the Motion's child for
///    every source segment and materializes the per-destination buffers;
///    later segments read their buffer.
///  * Parallel (morsel-driven, DESIGN.md §10): segments are tasks, not
///    threads. Each segment's slice chain runs as a sequence of tasks on a
///    shared work-stealing MorselScheduler sized to the hardware (or to
///    max_workers), and heavy scan loops additionally split into fixed-size
///    chunk-aligned morsels that idle workers steal. Motion nodes act like a
///    real interconnect exchange, but arrival is a counter, not a blocked
///    thread: a segment that reaches a Motion deposits its rows, bumps the
///    arrival count, and — when peers are still outstanding — suspends by
///    unwinding its task and registering a continuation; the last arriver
///    partitions the rows into per-destination buffers exactly once and
///    reschedules every suspended peer as a new task. No task ever blocks on
///    another, so any worker count — including one — makes progress, and
///    there is no minimum pool size. If any segment fails, the executor
///    raises an abort flag and reschedules every suspended continuation so
///    it observes the abort; queued-but-unstarted tasks fail their liveness
///    gate.
///    Runtime state is concurrency-safe by construction: the propagation hub
///    is segment-scoped (each segment task re-binds its channels' owner at
///    task start — a segment's tasks form a chain, never overlapping, so the
///    single-owner contract holds across thread hops), execution counters
///    accumulate into per-segment ExecStats (plus per-morsel shards merged
///    in range order at each scan's join), and storage writes follow the
///    single-writer DML rule below.
///    Parallel output is byte-identical to serial output: per-segment
///    results are concatenated in segment order, Motion buffers are
///    assembled in source-segment order, and per-morsel outputs land in
///    pre-assigned slots concatenated in range order.
///
/// Simulation conventions (documented deviations from a multi-process MPP):
///  * Gather delivers to segment 0 (standing in for the coordinator).
///  * Values nodes and scans of kReplicated base tables produce rows on
///    segment 0 only; runtime replication is expressed via Broadcast Motion.
///  * Scalar aggregates over empty input emit their single row on segment 0.
///  * DML nodes expect gathered input and apply changes through the global
///    TableStore (which re-routes rows to partitions and segments). Because
///    DML input is gathered, all reads complete at the Gather barrier before
///    any write applies, and only segment 0 carries rows — the single-writer
///    rule that keeps TableStore mutation safe in parallel mode (guarded by
///    a DML mutex as defense in depth).
///
/// An Executor is reusable across Execute calls — including after a failed
/// execution, which leaves zeroed stats and no stale per-run state — but is
/// not itself thread-safe: run one Execute at a time.
class Executor {
 public:
  struct Options {
    /// Fan segment slices out across the morsel scheduler (see class
    /// comment).
    bool parallel = false;
    /// Exact size of the lazily-created scheduler pool; 0 means
    /// hardware_concurrency. Any positive value works — Motion rendezvous is
    /// an arrival counter, not a set of blocked threads, so there is no
    /// minimum worker count and no serial fallback. Ignored when a shared
    /// scheduler was injected via SetScheduler.
    int max_workers = 0;
    /// Split heavy scan loops into fixed-size chunk-aligned morsels that idle
    /// workers steal (parallel mode only). Off: each segment slice still runs
    /// as one schedulable task, but scans stay whole. Output is bit-identical
    /// either way.
    bool morsels = true;
    /// Rows per scan morsel; 0 means auto (4 storage chunks = 4096 rows).
    /// Always rounded up to a whole number of 1024-row chunks so zone-map
    /// chunk skipping never straddles a morsel boundary.
    size_t morsel_rows = 0;
    /// Run Filter/Project/HashJoin/HashAgg through the batch kernel path
    /// (src/expr/vector_eval.h) with selection-vector scans and hashed join
    /// pipelines (src/exec/vectorized.cc). Output rows and ExecStats are
    /// bit-identical to the row-at-a-time path, which remains the correctness
    /// oracle; composes with `parallel` (each segment worker runs its own
    /// kernels).
    bool vectorized = false;
    /// Consult chunk zone maps (storage/synopsis.h) to skip chunks and whole
    /// slices a Filter's sargable predicate provably cannot match, in both
    /// the row and vectorized paths. Output rows, ordering, error outcomes,
    /// and the logical ExecStats counters are identical with it off — only
    /// the chunks_* / units_skipped counters (and time spent) change.
    bool data_skipping = true;
    /// Build and consume runtime join filters (runtime/join_filter.h) where
    /// the optimizer placed JoinFilterSpec/JoinFilterProbe annotations:
    /// build sides publish bloom + min/max summaries of their keys through
    /// the propagation hub, probe-side scans reject non-joining rows early
    /// (below Motions, before exchange). Rows, ordering, errors, and every
    /// pre-existing ExecStats field are identical with it off — only the
    /// joinfilter_* counters (and time spent) change. Chunk-level skipping
    /// through the zone maps additionally requires data_skipping.
    bool join_filters = true;
    /// Evaluate the exactly-compilable conjunct prefix of a Filter directly
    /// on encoded column chunks (expr/encoded_eval.h) when scanning
    /// column-oriented partitions, materializing only surviving rows. Output
    /// rows, ordering, error outcomes, and the logical ExecStats counters
    /// are identical with it off — only chunks_encoded_eval /
    /// rows_late_materialized / encoded_bytes_scanned (and time) change.
    /// No effect on row-oriented partitions.
    bool encoded_eval = true;
    /// Ship large low-cardinality string columns through Motion in
    /// dictionary-coded form (storage/column_store.h), decoding at the
    /// receiving edge. Rows, ordering, and every pre-existing ExecStats
    /// field are identical with it off — only motion_rows_encoded /
    /// motion_bytes_saved change (rows_moved and the Motion memory charge
    /// stay logical, computed from the plain row footprint).
    bool encoded_motion = true;
    /// Degrade to out-of-core execution (src/exec/spill_exec.cc) when the
    /// memory budget refuses a mandatory hash-join build table, hash
    /// aggregate group, or sort buffer: the refused state is partitioned by
    /// a secondary hash into on-disk spill files (recursively, with a fresh
    /// salt per depth) or sorted in budget-sized runs and merged. The budget
    /// becomes the spill trigger instead of the failure point. Output rows
    /// are bit-identical to the in-memory path; only the spill_* /
    /// sort_runs counters move. Off: refused mandatory charges surface
    /// kResourceExhausted exactly as before. Motion buffers and top-N heaps
    /// never spill, so their charges stay mandatory either way.
    bool spill = true;
  };

  Executor(const Catalog* catalog, StorageEngine* storage);
  Executor(const Catalog* catalog, StorageEngine* storage, Options options);
  ~Executor();

  /// Runs the plan and returns the concatenated root output (for plans with
  /// a Gather root this is exactly the coordinator's result).
  Result<std::vector<Row>> Execute(const PhysPtr& plan);

  /// Same, under a QueryContext: cooperative cancellation, deadline, memory
  /// budget, and fault injection (see runtime/query_context.h). `ctx` may be
  /// null (a shared unlimited default is used) and must outlive the call.
  /// Cancellation or deadline expiry terminates the run within one batch
  /// with kCancelled / kDeadlineExceeded: every worker joins, every Motion
  /// barrier wakes, hub channels and exchanges are drained by the usual
  /// end-of-run reset, and storage is untouched (DML liveness is re-checked
  /// after the read phase, before any write applies). Budget usage is
  /// per-execution: ResetUsage runs at the start of every call.
  Result<std::vector<Row>> Execute(const PhysPtr& plan, QueryContext* ctx);

  /// Stats of the most recent Execute call (zeroed if it failed).
  const ExecStats& stats() const { return stats_; }

  const Options& options() const { return options_; }

  /// Points parallel runs at an externally-owned scheduler instead of a
  /// private lazily-created one — Database uses this to share one
  /// hardware-sized pool across every Execute call (and, eventually, across
  /// queries). `scheduler` must outlive the executor; null reverts to the
  /// private pool. Call only between Execute calls.
  void SetScheduler(MorselScheduler* scheduler);

  /// Pool size implied by an Options::max_workers value: the value itself
  /// when positive, otherwise hardware_concurrency (min 1).
  static int ResolveWorkerCount(int max_workers);

 private:
  /// Per-Motion-node exchange state: deposited source rows, the rendezvous
  /// barrier, and the per-destination buffers built exactly once.
  struct MotionExchange;

  Result<std::vector<Row>> ExecuteSerial(const PhysPtr& plan);
  Result<std::vector<Row>> ExecuteParallel(const PhysPtr& plan);

  /// Completion state of one parallel run: per-segment verdicts and the
  /// count of finished segments, waited on by the Execute thread (the only
  /// blocking wait in parallel mode — scheduler tasks never block).
  struct ParallelRun;

  /// Per-segment memo for the suspension/re-walk protocol (see DESIGN.md
  /// §10): results of subtrees that completed before a suspension unwound
  /// the stack, nodes whose (discarded or consumed) execution must not
  /// repeat, and one-shot side effects already performed. Touched only by
  /// the segment's own task chain — no locks.
  struct SegmentRunState {
    /// Completed-child results cached across a suspension; consumed (moved
    /// out and erased) by the first re-visit.
    std::unordered_map<const PhysicalNode*, std::vector<Row>> cache;
    /// Nodes that completed and whose output is discardable (Sequence
    /// prefixes); re-visits return {} without executing.
    std::unordered_set<const PhysicalNode*> done;
    /// One-shot effects (hash-join budget charge + join-filter publication)
    /// already performed before a later suspension.
    std::unordered_set<const PhysicalNode*> effects_done;
    /// Hash joins whose build-table charge was refused (spill decided)
    /// before the probe child ran. The decision is recorded here — not in a
    /// local — because a probe-side Motion suspension unwinds the stack and
    /// the re-walk must spill regardless of what the budget says by then.
    /// Consumed (erased) once the probe child completes.
    std::unordered_set<const PhysicalNode*> spill_decided;
  };

  /// Ensures scheduler_ points at a live pool (the injected one, or a
  /// lazily-created private pool of max_workers / hardware_concurrency
  /// workers).
  void EnsureScheduler();

  /// The body of one segment task: binds the hub owner, runs the segment's
  /// plan walk, and either records the verdict in run_ (scheduling no
  /// further work) or — when the walk suspended at a Motion — simply
  /// returns, leaving the registered continuation to resume the chain.
  void RunSegmentTask(int segment);

  /// Morsel body: process rows [begin, end) of one storage slice into `out`,
  /// accumulating into `stats`. Ranges are chunk-aligned at both ends
  /// (except end == row_count).
  using MorselBody =
      std::function<Status(size_t begin, size_t end, ExecStats* stats,
                           std::vector<Row>* out)>;

  /// Runs `body` over [0, row_count): inline when morsels are ineligible
  /// (serial mode, morsels off, single worker, or a slice smaller than one
  /// morsel), otherwise split into chunk-aligned morsels spawned on a
  /// TaskGroup. Per-morsel rows land in pre-assigned slots appended to `out`
  /// in range order and per-morsel stats merge in range order, so output and
  /// stats are bit-identical to the inline run; on error the lowest range's
  /// status is returned (the serial loop's first error).
  Status RunMorselScan(int segment, size_t row_count, const MorselBody& body,
                       std::vector<Row>* out);

  /// Effective rows-per-morsel: Options::morsel_rows (0 = 4 chunks) rounded
  /// up to a whole number of storage chunks.
  size_t MorselRows() const;

  /// Pre-registers an exchange for every Motion node in the plan. Returns
  /// false if a Motion node object appears more than once (a shared subtree),
  /// in which case parallel execution falls back to serial, whose lazy
  /// exchange handles re-visits.
  bool CollectMotions(const PhysPtr& node);

  /// Routes per-source rows into the exchange's per-destination buffers
  /// according to the Motion kind, in source-segment order (determinism).
  /// Broadcast materializes the batch once in the exchange's shared buffer
  /// instead of once per destination. Also publishes any JoinFilterSpec the
  /// optimizer attached to this Motion (the cross-segment merged summary),
  /// before `built` is announced, so consumers blocked on the rendezvous
  /// observe it. `segment` is the building segment (stats attribution).
  Status BuildMotionBuffers(const MotionNode& node, int segment,
                            std::vector<std::vector<Row>> source_rows,
                            MotionExchange* exchange);

  /// Reads `segment`'s output of a built exchange: the shared broadcast
  /// buffer is copied (every destination reads it), per-destination buffers
  /// are moved out unless the exchange was lazily registered for a shared
  /// Motion subtree, whose buffers may be re-read.
  std::vector<Row> ReadMotionBuffer(const MotionNode& node, MotionExchange& exchange,
                                    int segment);

  /// Marks the current run failed and reschedules every continuation
  /// suspended at a Motion exchange, so each observes the abort and records
  /// its verdict instead of waiting for peers that will never arrive. Safe
  /// from any thread, including a QueryContext cancel callback racing a
  /// serial run's lazy exchange registration (exchanges_mu_).
  void SignalAbort();

  /// The batch-granularity liveness + fault check, called at operator
  /// dispatch and once per chunk/batch inside the hot loops: kCancelled /
  /// kDeadlineExceeded from the context, the peer-abort status when another
  /// segment failed, or the armed fault at `point` (null = no fault point
  /// here). Fault-free cost: three predictable loads.
  Status CheckExec(int segment, const char* point);

  /// Charges `bytes` of mandatory operator state (build tables, sort
  /// buffers, motion buffers) against the query budget, first passing
  /// through the alloc.budget fault point. Refused charges fail the query
  /// with kResourceExhausted naming `what`.
  Status ChargeBudget(int segment, size_t bytes, const char* what);

  /// Charges advisory state (join-filter summaries, synopsis rebuilds);
  /// false means the caller must shed the allocation instead of failing.
  bool TryChargeOptional(size_t bytes);

  /// Attempts a mandatory charge the caller can satisfy out-of-core
  /// instead: passes through the alloc.budget fault point (an armed fault
  /// there still fails the query), then reports whether the budget accepted
  /// the bytes. A refusal is not an error — it is the spill trigger.
  Result<bool> TryChargeSpill(int segment, size_t bytes);

  /// Lazily creates the per-run spill file manager rooted at the context's
  /// spill_dir. Thread-safe (parallel segments may spill concurrently); the
  /// manager — and with it every spill file — is destroyed by Execute's
  /// end-of-run teardown on success, cancellation, deadline expiry, fault,
  /// and retry alike.
  Result<SpillFileManager*> EnsureSpillManager();

  // --- Out-of-core operators (src/exec/spill_exec.cc) -----------------------
  // Entered when TryChargeSpill refuses the corresponding in-memory state.
  // One row-oriented implementation shared by the row and vectorized paths
  // (so cross-path bit-identity of spilled results is structural). Each
  // reproduces its in-memory oracle's output order exactly; see the file
  // comment in spill_exec.cc for the order-restoration argument.

  /// Hybrid hash join fallback: partitions both inputs by a salted
  /// secondary hash into spill file pairs, recursively re-partitions
  /// overfull partitions (bounded depth, then a block-streaming fallback
  /// that never materializes the partition), joins each partition with the
  /// oracle's hash-table code, and restores global probe order.
  Result<std::vector<Row>> SpillHashJoin(const HashJoinNode& node, int segment,
                                         std::vector<Row> build_rows,
                                         std::vector<Row> probe_rows,
                                         const ColumnLayout& build_layout,
                                         const ColumnLayout& probe_layout,
                                         const std::vector<int>& build_pos,
                                         const std::vector<int>& probe_pos);

  /// Hash aggregation fallback: partitions the input by a salted group-key
  /// hash, aggregates each partition in memory when it fits (streaming with
  /// per-group charges at max depth), and restores the oracle's
  /// first-appearance group order via first-arrival input indexes.
  Result<std::vector<Row>> SpillHashAgg(const HashAggNode& node, int segment,
                                        const std::vector<Row>& rows,
                                        const ColumnLayout& layout,
                                        const std::vector<int>& group_pos);

  /// External merge sort fallback: budget-sized sorted runs spilled to
  /// disk, then a k-way merge with budget-aware read-back buffers. Run
  /// boundaries are contiguous input slices and equal keys break ties by
  /// run index, so the merge reproduces the oracle's stable sort exactly.
  Result<std::vector<Row>> SpillSortRows(const SortNode& node, int segment,
                                         std::vector<Row> rows,
                                         const std::vector<int>& positions,
                                         const std::vector<bool>& ascending,
                                         size_t sort_bytes);

  /// Budget-aware synopsis access for scans: returns the slice synopsis,
  /// charging a rebuild estimate when in-place DML staled it. A refused
  /// rebuild charge sheds the synopsis (returns nullptr, counted in
  /// synopsis_rebuilds_shed) and the scan proceeds unskipped.
  const SliceSynopsis* AcquireSynopsis(const TableStore& store, Oid unit_oid,
                                       int segment);

  /// Budget-aware encoded-column access for scans of column-oriented units:
  /// returns the slice's encoded image, charging a re-encode estimate when
  /// DML staled it. Returns nullptr for row-oriented units, or when the
  /// charge was refused (counted in colstore_rebuilds_shed) — the scan then
  /// runs off the row image as usual.
  const SliceColumns* AcquireColumns(const TableStore& store, Oid unit_oid,
                                     int segment);

  Result<std::vector<Row>> ExecNode(const PhysPtr& node, int segment);

  /// A JoinFilterProbe resolved against a consumer's output layout, with the
  /// published summary in hand. Bound once per operator execution.
  struct BoundJoinFilter {
    const JoinFilterSummary* summary;
    std::vector<int> key_positions;
    /// Consumer sits below a probe-side Motion: every rejected row (or
    /// skipped chunk row) is compensated into rows_moved — which stays
    /// logical — and credited to joinfilter_motion_rows_saved.
    bool below_motion;
  };

  /// Resolves the node's JoinFilterProbe annotations against `layout`,
  /// looking the summaries up in the hub (segment-local or global). Probes
  /// whose summary was never published are silently dropped — the filter is
  /// advisory. Empty when Options::join_filters is off.
  Result<std::vector<BoundJoinFilter>> BindJoinFilterProbes(
      const PhysicalNode& node, const ColumnLayout& layout, int segment);

  /// Publishes the segment-local build-key summaries a hash join's
  /// JoinFilterSpec annotations describe, from the already-materialized
  /// build rows. Must run after the build child and before the probe child,
  /// so probe-side consumers on the same slice thread can find them.
  Status PublishLocalJoinFilters(const PhysicalNode& node,
                                 const ColumnLayout& build_layout,
                                 const std::vector<Row>& build_rows, int segment);

  Result<std::vector<Row>> ExecTableScan(const TableScanNode& node, int segment);
  Result<std::vector<Row>> ExecCheckedPartScan(const CheckedPartScanNode& node,
                                               int segment);
  Result<std::vector<Row>> ExecDynamicScan(const DynamicScanNode& node, int segment);
  /// Partition-aware index access (row and vectorized paths share this
  /// implementation; only residual evaluation dispatches on
  /// Options::vectorized). One morsel-scheduler task per surviving unit when
  /// morsels are eligible.
  Result<std::vector<Row>> ExecDynamicIndexScan(const DynamicIndexScanNode& node,
                                                int segment);
  Result<std::vector<Row>> ExecPartitionSelector(const PartitionSelectorNode& node,
                                                 int segment);
  Result<std::vector<Row>> ExecFilter(const FilterNode& node, int segment);
  Result<std::vector<Row>> ExecProject(const ProjectNode& node, int segment);
  Result<std::vector<Row>> ExecHashJoin(const HashJoinNode& node, int segment);
  Result<std::vector<Row>> ExecNestedLoopJoin(const NestedLoopJoinNode& node,
                                              int segment);
  Result<std::vector<Row>> ExecIndexNLJoin(const IndexNLJoinNode& node, int segment);
  Result<std::vector<Row>> ExecHashAgg(const HashAggNode& node, int segment);
  Result<std::vector<Row>> ExecSort(const SortNode& node, int segment);
  /// Bounded top-N: keeps the k rows a stable sort by `keys` would rank
  /// first, in that order — output is bit-identical to Limit(k) over
  /// Sort(keys) — holding at most k rows of sort state (O(k) budget charge).
  Result<std::vector<Row>> ExecTopN(const TopNNode& node, int segment);
  Result<std::vector<Row>> ExecMotion(const MotionNode& node, int segment);
  Result<std::vector<Row>> ExecInsert(const InsertNode& node, int segment);
  Result<std::vector<Row>> ExecUpdate(const UpdateNode& node, int segment);
  Result<std::vector<Row>> ExecDelete(const DeleteNode& node, int segment);

  // --- Vectorized operators (src/exec/vectorized.cc) ------------------------
  // Selected by Options::vectorized; each produces rows and stats
  // bit-identical to its row-at-a-time counterpart above.

  /// A Motion-free scan subtree a Filter can fuse with: optional Sequence
  /// prefixes (PartitionSelectors) followed by TableScan/DynamicScan/
  /// CheckedPartScan leaves, possibly under an Append. Shared by the
  /// vectorized fused filter and the row-path skipping filter
  /// (src/exec/data_skipping.cc).
  struct ScanFragment {
    /// Sequence prefix children (PartitionSelectors feeding DynamicScans),
    /// executed in order for their side effects before any scanning; their
    /// outputs are discarded, exactly as SequenceNode does.
    std::vector<PhysPtr> prefix;
    /// The scan leaves, in the order the row path would scan them.
    std::vector<const PhysicalNode*> scans;
  };

  /// Matches `node` against the fusable scan-fragment grammar. Returns false
  /// for shapes the fused path does not cover (`out` may be partially
  /// filled and must only be used on success).
  static bool MatchScanFragment(const PhysPtr& node, ScanFragment* out);

  /// Runs `fn(store, table_oid, unit_oid)` for every storage unit the
  /// fragment's scan leaves cover on `segment`, applying each leaf kind's
  /// gating (replicated-on-segment-0, CheckedPartScan membership, DynamicScan
  /// propagation) exactly as the unfused row operators do. The Sequence
  /// prefixes must already have been executed.
  Status ForEachScanUnit(const ScanFragment& frag, int segment,
                         const std::function<Status(const TableStore&, Oid, Oid)>& fn);

  /// Row-path fused filter-over-scan with zone-map skipping
  /// (src/exec/data_skipping.cc): evaluates the predicate row-at-a-time
  /// directly over storage slices, consulting chunk synopses to skip chunks
  /// (and whole slices via the rollup) the sargable prefix proves empty.
  /// Bit-identical rows/order/errors/logical stats to the unfused path.
  Result<std::vector<Row>> ExecFilterRowSkip(const FilterNode& node,
                                             const ScanFragment& frag, int segment);

  /// Vectorized join-filter probe: hashes each bound filter's key columns
  /// over the surviving selection in one batch pass, then tests every row
  /// and compacts the survivors into `sel` in place. Probe verdicts and
  /// counter updates are identical to the row path's per-row RowMayMatch.
  /// Counters go to `stats` (a morsel-local shard inside morsel scans, the
  /// segment accumulator elsewhere).
  void ProbeJoinFiltersVec(const std::vector<Row>& rows,
                           const std::vector<BoundJoinFilter>& filters,
                           ExecStats* stats, std::vector<uint32_t>* sel);

  Result<std::vector<Row>> ExecFilterVec(const FilterNode& node, int segment);
  /// Fused filter-over-scan: evaluates the predicate in chunks directly over
  /// TableStore::UnitRows slices via a selection vector; rows that fail the
  /// predicate are never copied.
  Result<std::vector<Row>> ExecFusedFilterScan(const FilterNode& node,
                                               const ScanFragment& frag, int segment);
  Result<std::vector<Row>> ExecProjectVec(const ProjectNode& node, int segment);
  Result<std::vector<Row>> ExecHashJoinVec(const HashJoinNode& node, int segment);
  Result<std::vector<Row>> ExecHashAggVec(const HashAggNode& node, int segment);

  /// Scans one storage unit on one segment, appending (optionally
  /// rowid-extended) rows to `out` and recording stats against the segment's
  /// accumulator. Bound join filters (never combined with rowid emission)
  /// reject non-joining rows before they are materialized, skipping whole
  /// chunks via the slice synopsis when Options::data_skipping allows.
  Status ScanUnit(const TableStore& store, Oid table_oid, Oid unit_oid,
                  int segment, bool emit_rowids,
                  const std::vector<BoundJoinFilter>& join_filters,
                  std::vector<Row>* out);

  const Catalog* catalog_;
  StorageEngine* storage_;
  int num_segments_;
  Options options_;
  PartitionPropagationHub hub_;
  /// Merged stats of the last successful Execute.
  ExecStats stats_;
  /// Per-segment accumulators for the run in progress; each is written only
  /// by the thread executing that segment's slices.
  std::vector<ExecStats> seg_stats_;
  /// Exchange state per Motion node, pre-built for the run in progress.
  std::unordered_map<const PhysicalNode*, std::unique_ptr<MotionExchange>> exchanges_;
  /// Guards exchanges_ mutations (serial-mode lazy registration, end-of-run
  /// clear) against SignalAbort's iteration from a cancel thread. Parallel
  /// workers read the map lock-free: it is immutable during a parallel run.
  std::mutex exchanges_mu_;
  /// True while the current run is fanned out across workers.
  bool parallel_run_ = false;
  std::atomic<bool> abort_flag_{false};
  /// Context of the run in progress; never null while executing (a shared
  /// unlimited default stands in when the caller passed none).
  QueryContext* ctx_ = nullptr;
  /// Spill file manager of the run in progress; null until the first spill.
  /// Reset (removing the per-query spill directory and every file in it) by
  /// Execute's end-of-run teardown on every outcome.
  std::unique_ptr<SpillFileManager> spill_files_;
  /// Guards lazy creation of spill_files_ from concurrent segment tasks.
  std::mutex spill_mu_;
  /// Defense in depth for the single-writer DML rule (see class comment).
  std::mutex dml_mu_;
  /// The pool parallel runs schedule onto: an injected shared scheduler
  /// (SetScheduler) or the lazily-created private one below.
  MorselScheduler* scheduler_ = nullptr;
  std::unique_ptr<MorselScheduler> owned_scheduler_;
  /// Per-segment suspension memos for the run in progress (parallel mode).
  std::vector<SegmentRunState> seg_run_;
  /// Completion state of the parallel run in progress (owned by
  /// ExecuteParallel's frame); null otherwise. Segment tasks record their
  /// verdicts here.
  ParallelRun* run_ = nullptr;
  /// Root of the plan being run in parallel; continuations re-enter through
  /// it.
  const PhysPtr* current_plan_ = nullptr;
};

}  // namespace mppdb

#endif  // MPPDB_EXEC_EXECUTOR_H_
