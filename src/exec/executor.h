#ifndef MPPDB_EXEC_EXECUTOR_H_
#define MPPDB_EXEC_EXECUTOR_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "runtime/propagation.h"
#include "storage/storage.h"

namespace mppdb {

/// Counters collected during one query execution; the raw material for the
/// paper's partition-elimination experiments (Table 3, Fig. 16, Fig. 17).
struct ExecStats {
  /// Per table OID: distinct storage units (leaf partitions) actually
  /// scanned, across all segments.
  std::map<Oid, std::set<Oid>> partitions_scanned;
  /// Total tuples read from storage (across segments).
  size_t tuples_scanned = 0;
  /// Total rows shipped through Motion operators.
  size_t rows_moved = 0;

  /// Distinct partitions scanned for `table_oid` (0 if never scanned).
  size_t PartitionsScanned(Oid table_oid) const;
  /// Sum over all tables.
  size_t TotalPartitionsScanned() const;
};

/// Executes physical plans against the simulated MPP cluster.
///
/// Execution model: every plan slice (maximal Motion-free subtree) runs once
/// per segment, operators materialize their outputs, and children execute
/// left to right — so a PartitionSelector placed in children[0] of a join
/// always completes before the DynamicScan in children[1] starts, on the
/// same segment, matching the paper's producer/consumer contract.
///
/// Simulation conventions (documented deviations from a multi-process MPP):
///  * Gather delivers to segment 0 (standing in for the coordinator).
///  * Values nodes and scans of kReplicated base tables produce rows on
///    segment 0 only; runtime replication is expressed via Broadcast Motion.
///  * Scalar aggregates over empty input emit their single row on segment 0.
///  * DML nodes expect gathered input and apply changes through the global
///    TableStore (which re-routes rows to partitions and segments).
class Executor {
 public:
  Executor(const Catalog* catalog, StorageEngine* storage);

  /// Runs the plan and returns the concatenated root output (for plans with
  /// a Gather root this is exactly the coordinator's result).
  Result<std::vector<Row>> Execute(const PhysPtr& plan);

  /// Stats of the most recent Execute call.
  const ExecStats& stats() const { return stats_; }

 private:
  Result<std::vector<Row>> ExecNode(const PhysPtr& node, int segment);

  Result<std::vector<Row>> ExecTableScan(const TableScanNode& node, int segment);
  Result<std::vector<Row>> ExecCheckedPartScan(const CheckedPartScanNode& node,
                                               int segment);
  Result<std::vector<Row>> ExecDynamicScan(const DynamicScanNode& node, int segment);
  Result<std::vector<Row>> ExecPartitionSelector(const PartitionSelectorNode& node,
                                                 int segment);
  Result<std::vector<Row>> ExecFilter(const FilterNode& node, int segment);
  Result<std::vector<Row>> ExecProject(const ProjectNode& node, int segment);
  Result<std::vector<Row>> ExecHashJoin(const HashJoinNode& node, int segment);
  Result<std::vector<Row>> ExecNestedLoopJoin(const NestedLoopJoinNode& node,
                                              int segment);
  Result<std::vector<Row>> ExecIndexNLJoin(const IndexNLJoinNode& node, int segment);
  Result<std::vector<Row>> ExecHashAgg(const HashAggNode& node, int segment);
  Result<std::vector<Row>> ExecSort(const SortNode& node, int segment);
  Result<std::vector<Row>> ExecMotion(const MotionNode& node, int segment);
  Result<std::vector<Row>> ExecInsert(const InsertNode& node, int segment);
  Result<std::vector<Row>> ExecUpdate(const UpdateNode& node, int segment);
  Result<std::vector<Row>> ExecDelete(const DeleteNode& node, int segment);

  /// Scans one storage unit on one segment, appending (optionally
  /// rowid-extended) rows to `out` and recording stats.
  void ScanUnit(const TableStore& store, Oid table_oid, Oid unit_oid, int segment,
                bool emit_rowids, std::vector<Row>* out);

  const Catalog* catalog_;
  StorageEngine* storage_;
  int num_segments_;
  PartitionPropagationHub hub_;
  ExecStats stats_;
  /// Motion outputs computed once per node: node -> per-destination buffers.
  std::unordered_map<const PhysicalNode*, std::vector<std::vector<Row>>> motion_cache_;
};

}  // namespace mppdb

#endif  // MPPDB_EXEC_EXECUTOR_H_
