// Vectorized execution path (Executor::Options::vectorized).
//
// Operators here are drop-in replacements for their row-at-a-time
// counterparts in executor.cc: same output rows in the same order, same
// ExecStats, same success/failure behavior. The row path stays the
// correctness oracle (the pattern PR 1 used for parallel vs serial); the
// oracle tests in tests/vectorized_exec_test.cc assert bit-identical results
// across the whole workload suite. The one documented deviation: when several
// rows of a batch would each raise an error, the batch path may surface a
// different one of those errors than strict row order would (column-major vs
// row-major evaluation) — which error wins is unspecified, but ok/not-ok is
// always identical (see DESIGN.md §6).

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "exec/agg_state.h"
#include "exec/executor.h"
#include "exec/join_hash.h"
#include "expr/encoded_eval.h"
#include "expr/sargable.h"
#include "expr/vector_eval.h"
#include "runtime/spill/row_codec.h"

namespace mppdb {

void HashRowKeys(const std::vector<Row>& rows, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes, std::vector<uint8_t>* has_null) {
  hashes->resize(rows.size());
  has_null->resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    uint64_t h = kKeyHashSeed;
    uint8_t null_flag = 0;
    for (int pos : positions) {
      const Datum& v = rows[i][static_cast<size_t>(pos)];
      null_flag = static_cast<uint8_t>(null_flag | (v.is_null() ? 1 : 0));
      h = CombineKeyHash(h, v);
    }
    (*hashes)[i] = h;
    (*has_null)[i] = null_flag;
  }
}

namespace {

/// Fills `sel` with the identity selection [base, end).
void IdentitySel(size_t base, size_t end, SelVec* sel) {
  sel->clear();
  for (size_t i = base; i < end; ++i) sel->push_back(static_cast<uint32_t>(i));
}

/// Batch kernel for the join-filter probe: the CombineKeyHash fold of the
/// key columns for every row in `sel` (same formula as HashRowKeys, so the
/// verdicts match the row path's RowMayMatch exactly).
void HashKeysForSel(const std::vector<Row>& rows, const SelVec& sel,
                    const std::vector<int>& positions,
                    std::vector<uint64_t>* hashes) {
  hashes->resize(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    const Row& row = rows[sel[i]];
    uint64_t h = kKeyHashSeed;
    for (int pos : positions) h = CombineKeyHash(h, row[static_cast<size_t>(pos)]);
    (*hashes)[i] = h;
  }
}

}  // namespace

void Executor::ProbeJoinFiltersVec(const std::vector<Row>& rows,
                                   const std::vector<BoundJoinFilter>& filters,
                                   ExecStats* stats_out,
                                   std::vector<uint32_t>* sel) {
  if (filters.empty() || sel->empty()) return;
  ExecStats& stats = *stats_out;
  std::vector<std::vector<uint64_t>> hashes(filters.size());
  for (size_t f = 0; f < filters.size(); ++f) {
    HashKeysForSel(rows, *sel, filters[f].key_positions, &hashes[f]);
  }
  size_t kept = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    const uint32_t r = (*sel)[i];
    ++stats.joinfilter_probed;
    // Rejection is attributed to the first rejecting filter, like the row
    // path, so the below-Motion rows_moved compensation is identical.
    const BoundJoinFilter* rejecter = nullptr;
    for (size_t f = 0; f < filters.size(); ++f) {
      if (!filters[f].summary->RowMayMatchHashed(rows[r], filters[f].key_positions,
                                                 hashes[f][i])) {
        rejecter = &filters[f];
        break;
      }
    }
    if (rejecter == nullptr) {
      (*sel)[kept++] = r;
      continue;
    }
    ++stats.joinfilter_rows_rejected;
    if (rejecter->below_motion) {
      ++stats.rows_moved;  // rows_moved stays logical
      ++stats.joinfilter_motion_rows_saved;
    }
  }
  sel->resize(kept);
}

bool Executor::MatchScanFragment(const PhysPtr& node, ScanFragment* out) {
  switch (node->kind()) {
    case PhysNodeKind::kTableScan:
      // Rowid-emitting scans synthesize extra columns per row; they stay on
      // the row path (DML plans, not hot scans).
      if (!static_cast<const TableScanNode&>(*node).rowid_ids().empty()) return false;
      out->scans.push_back(node.get());
      return true;
    case PhysNodeKind::kDynamicScan:
      if (!static_cast<const DynamicScanNode&>(*node).rowid_ids().empty()) return false;
      out->scans.push_back(node.get());
      return true;
    case PhysNodeKind::kCheckedPartScan:
      out->scans.push_back(node.get());
      return true;
    case PhysNodeKind::kSequence: {
      if (node->children().empty()) return false;
      for (size_t i = 0; i + 1 < node->children().size(); ++i) {
        out->prefix.push_back(node->child(i));
      }
      return MatchScanFragment(node->children().back(), out);
    }
    case PhysNodeKind::kAppend: {
      for (const PhysPtr& child : node->children()) {
        if (!MatchScanFragment(child, out)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

Result<std::vector<Row>> Executor::ExecFilterVec(const FilterNode& node, int segment) {
  ScanFragment frag;
  if (MatchScanFragment(node.child(0), &frag)) {
    return ExecFusedFilterScan(node, frag, segment);
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, layout, segment));
  KernelProgram program = KernelProgram::Compile(node.predicate(), layout);
  KernelContext ctx;
  ctx.Prepare(program, KernelContext::kDefaultChunkRows);
  std::vector<Row> out;
  out.reserve(rows.size());
  SelVec sel, keep;
  for (size_t base = 0; base < rows.size(); base += ctx.chunk_capacity()) {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
    size_t end = std::min(rows.size(), base + ctx.chunk_capacity());
    IdentitySel(base, end, &sel);
    MPPDB_RETURN_IF_ERROR(EvalPredicateBatch(program, &ctx, rows, base, sel, &keep));
    // Join filters apply to predicate survivors only (identical error
    // behavior to filters off).
    ProbeJoinFiltersVec(rows, join_filters, &seg_stats_[static_cast<size_t>(segment)],
                        &keep);
    for (uint32_t r : keep) out.push_back(std::move(rows[r]));
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecFusedFilterScan(const FilterNode& node,
                                                       const ScanFragment& frag,
                                                       int segment) {
  for (size_t i = 0; i < frag.prefix.size(); ++i) {
    Result<std::vector<Row>> discarded = ExecNode(frag.prefix[i], segment);
    if (!discarded.ok()) {
      if (parallel_run_ && IsSuspendedStatus(discarded.status())) {
        // Prefix outputs are discarded; mark completed ones done so the
        // re-walk skips their side-effecting subtrees (see kSequence).
        SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
        for (size_t j = 0; j < i; ++j) memo.done.insert(frag.prefix[j].get());
      }
      return discarded.status();
    }
  }

  ColumnLayout layout = node.child(0)->OutputLayout();
  // The program is compiled once and shared read-only across morsels; each
  // morsel runs its own KernelContext (the mutable evaluation scratch).
  const KernelProgram program = KernelProgram::Compile(node.predicate(), layout);
  CompiledSargable compiled;
  if (options_.data_skipping) {
    compiled = CompileSargable(node.sargable(), layout);
  }
  const bool can_prune = compiled.CanPrune();
  // Exactly-compiled conjunct prefix for column-oriented units (see
  // ExecFilterRowSkip): the prefix runs on encoded chunks, the residual as a
  // kernel program over the late-materialized survivors — whose selection
  // vector feeds straight into the batch evaluator.
  const EncodedPredicate encoded =
      options_.encoded_eval ? CompileEncodedPredicate(node.predicate(), layout)
                            : EncodedPredicate();
  std::optional<KernelProgram> residual_program;
  if (encoded.HasTerms() && encoded.residual != nullptr) {
    residual_program.emplace(KernelProgram::Compile(encoded.residual, layout));
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, layout, segment));
  std::vector<Row> out;

  // Join-filter chunk skip, under the same license as the row skipping path
  // (see ExecFilterRowSkip): never below a Motion, and only when the whole
  // predicate is provably error-free on the chunk.
  auto join_filter_chunk_skip = [&](const ChunkSynopsis& chunk,
                                    ExecStats& stats) {
    if (join_filters.empty()) return false;
    if (!SynopsisErrorFree(node.sargable(), compiled, chunk)) return false;
    for (const BoundJoinFilter& filter : join_filters) {
      if (filter.below_motion) continue;
      if (filter.summary->ChunkProvablyDisjoint(chunk, filter.key_positions)) {
        ++stats.joinfilter_chunks_skipped;
        return true;
      }
    }
    return false;
  };

  // Evaluates the predicate in chunks directly over the storage slice and
  // copies only the surviving rows — filtered-out tuples are never
  // materialized. Stats are recorded exactly as ScanUnit would; the chunks_*
  // accounting mirrors the row skipping path (ExecFilterRowSkip) so row and
  // vectorized stats stay bit-identical. The chunk loop is morsel-ranged:
  // chunk-aligned sub-ranges of the slice run as stealable tasks, each with
  // its own kernel context and stats shard, concatenated in range order.
  auto scan_unit_filtered = [&](const TableStore& store, Oid table_oid,
                                Oid unit_oid) -> Status {
    const std::vector<Row>& rows = store.UnitRows(unit_oid, segment);
    ExecStats& seg_stats = seg_stats_[static_cast<size_t>(segment)];
    seg_stats.partitions_scanned[table_oid].insert(unit_oid);
    seg_stats.tuples_scanned += rows.size();
    if (rows.empty()) return Status::OK();
    const SliceSynopsis* synopsis = nullptr;
    if (options_.data_skipping) {
      seg_stats.chunks_total +=
          (rows.size() + TableStore::kChunkRows - 1) / TableStore::kChunkRows;
      if (can_prune || !join_filters.empty()) {
        // A shed synopsis rebuild (budget pressure) returns null: the slice
        // scans unskipped, exactly like the row path. Acquired here, in the
        // spawning task (the lazy rebuild is owner-confined); morsel bodies
        // only read it.
        synopsis = AcquireSynopsis(store, unit_oid, segment);
        if (synopsis != nullptr) {
          MPPDB_CHECK(synopsis->rollup.row_count == rows.size());
          if (can_prune && SynopsisCanSkip(compiled, synopsis->rollup)) {
            ++seg_stats.units_skipped;
            seg_stats.chunks_skipped += synopsis->chunks.size();
            return Status::OK();
          }
        }
      }
    }
    // Encoded image of column-oriented units (null for row-oriented ones, a
    // shed re-encode, or a predicate with no compilable prefix).
    const SliceColumns* cols =
        encoded.HasTerms() ? AcquireColumns(store, unit_oid, segment) : nullptr;
    if (cols != nullptr) MPPDB_CHECK(cols->row_count == rows.size());
    auto body = [this, segment, &rows, &join_filters, &join_filter_chunk_skip,
                 &program, &compiled, can_prune, &encoded, &residual_program,
                 cols, synopsis](size_t begin, size_t end, ExecStats* stats,
                                 std::vector<Row>* mout) -> Status {
      // TableStore::kChunkRows == KernelContext::kDefaultChunkRows
      // (static_assert in data_skipping.cc), so batch boundaries land
      // exactly on synopsis chunk boundaries and a skipped chunk is a
      // skipped batch.
      KernelContext ctx;
      ctx.Prepare(program, TableStore::kChunkRows);
      KernelContext residual_ctx;
      if (residual_program) {
        residual_ctx.Prepare(*residual_program, TableStore::kChunkRows);
      }
      SelVec sel, keep;
      std::vector<char> pure;
      for (size_t base = begin; base < end; base += TableStore::kChunkRows) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
        const size_t chunk_end = std::min(end, base + TableStore::kChunkRows);
        const size_t chunk_idx = base / TableStore::kChunkRows;
        if (synopsis != nullptr) {
          const ChunkSynopsis& chunk = synopsis->chunks[chunk_idx];
          // Predicate-driven skips run first so chunks_skipped is identical
          // with join filters on or off.
          if (can_prune && SynopsisCanSkip(compiled, chunk)) {
            ++stats->chunks_skipped;
            continue;
          }
          if (join_filter_chunk_skip(chunk, *stats)) continue;
        }
        if (cols != nullptr && EncodedChunkEligible(encoded, *cols, chunk_idx)) {
          // Encoded fast path: prefix on the encoded chunk; the residual
          // kernel program sees only the survivor selection (the kernel AND
          // already short-circuits per row on FALSE, so this is the same set
          // of rows it would evaluate the residual conjuncts on).
          ++stats->chunks_encoded_eval;
          stats->encoded_bytes_scanned += cols->ChunkEncodedBytes(chunk_idx);
          EvalEncodedPredicate(encoded, *cols, chunk_idx, base,
                               chunk_end - base, &sel,
                               residual_program ? &pure : nullptr);
          stats->rows_late_materialized += sel.size();
          if (residual_program) {
            MPPDB_RETURN_IF_ERROR(EvalPredicateBatch(
                *residual_program, &residual_ctx, rows, base, sel, &keep));
            // Final keep needs every prefix verdict TRUE as well: intersect
            // with the purity flags (aligned to sel; keep ⊆ sel, both
            // ascending).
            size_t kept = 0, si = 0;
            for (uint32_t r : keep) {
              while (sel[si] != r) ++si;
              if (pure[si] != 0) keep[kept++] = r;
            }
            keep.resize(kept);
          } else {
            keep = sel;
          }
          ProbeJoinFiltersVec(rows, join_filters, stats, &keep);
          for (uint32_t r : keep) mout->push_back(rows[r]);
          continue;
        }
        IdentitySel(base, chunk_end, &sel);
        MPPDB_RETURN_IF_ERROR(
            EvalPredicateBatch(program, &ctx, rows, base, sel, &keep));
        ProbeJoinFiltersVec(rows, join_filters, stats, &keep);
        for (uint32_t r : keep) mout->push_back(rows[r]);
      }
      return Status::OK();
    };
    return RunMorselScan(segment, rows.size(), body, &out);
  };

  MPPDB_RETURN_IF_ERROR(ForEachScanUnit(frag, segment, scan_unit_filtered));
  return out;
}

Result<std::vector<Row>> Executor::ExecProjectVec(const ProjectNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  const size_t num_items = node.items().size();
  std::vector<KernelProgram> programs;
  programs.reserve(num_items);
  std::vector<KernelContext> ctxs(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    programs.push_back(KernelProgram::Compile(node.items()[i].expr, layout));
    ctxs[i].Prepare(programs[i], KernelContext::kDefaultChunkRows);
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  SelVec sel;
  const size_t chunk = KernelContext::kDefaultChunkRows;
  for (size_t base = 0; base < rows.size(); base += chunk) {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
    size_t end = std::min(rows.size(), base + chunk);
    IdentitySel(base, end, &sel);
    for (size_t i = 0; i < num_items; ++i) {
      MPPDB_RETURN_IF_ERROR(EvalExprBatch(programs[i], &ctxs[i], rows, base, sel));
    }
    for (uint32_t r : sel) {
      Row projected;
      projected.reserve(num_items);
      for (size_t i = 0; i < num_items; ++i) {
        // Moving out of the slot is safe: every kernel rewrites all selected
        // positions on the next chunk before they are read again.
        projected.push_back(std::move(ctxs[i].slot(programs[i].root())[r - base]));
      }
      out.push_back(std::move(projected));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecHashJoinVec(const HashJoinNode& node,
                                                   int segment) {
  // children[0] (build) runs to completion first — the property
  // PartitionSelector placement relies on.
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> build_rows, ExecNode(node.child(0), segment));
  ColumnLayout build_layout = node.child(0)->OutputLayout();
  // One-shot effects guard, as in the row path: a probe-side Motion
  // suspension must not re-charge the budget or re-publish the filter.
  const bool effects_pending =
      !parallel_run_ ||
      seg_run_[static_cast<size_t>(segment)].effects_done.erase(&node) == 0;
  if (effects_pending) {
    // Same charge formula and charge/publish order as the row path's build
    // table, so budget outcomes are path-independent: mandatory table first,
    // advisory summary second (the one that sheds under pressure).
    const size_t build_bytes =
        ApproxRowsBytes(build_rows.size(), build_layout.ids().size()) +
        RowsPayloadBytes(build_rows);
    if (options_.spill) {
      // Refusal = spill, recorded in the segment memo exactly as in the row
      // path (the probe child may suspend and unwind this frame).
      MPPDB_ASSIGN_OR_RETURN(bool charged, TryChargeSpill(segment, build_bytes));
      if (!charged) {
        seg_run_[static_cast<size_t>(segment)].spill_decided.insert(&node);
      }
    } else {
      MPPDB_RETURN_IF_ERROR(
          ChargeBudget(segment, build_bytes, "hash join build table"));
    }
    // Publish this segment's build-key summary before the probe child runs,
    // exactly as the row path does.
    MPPDB_RETURN_IF_ERROR(
        PublishLocalJoinFilters(node, build_layout, build_rows, segment));
  }
  Result<std::vector<Row>> probe_result = ExecNode(node.child(1), segment);
  if (!probe_result.ok()) {
    if (parallel_run_ && IsSuspendedStatus(probe_result.status())) {
      SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
      memo.cache[node.child(0).get()] = std::move(build_rows);
      memo.effects_done.insert(&node);
    }
    return probe_result.status();
  }
  std::vector<Row> probe_rows = std::move(probe_result).value();

  ColumnLayout probe_layout = node.child(1)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> build_pos,
                         ResolvePositions(build_layout, node.build_keys()));
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> probe_pos,
                         ResolvePositions(probe_layout, node.probe_keys()));

  if (seg_run_[static_cast<size_t>(segment)].spill_decided.erase(&node) > 0) {
    // Out-of-core joins share one row-oriented implementation with the row
    // path, so a spilled vectorized join is bit-identical to a spilled row
    // join by construction (and both to the in-memory oracle).
    return SpillHashJoin(node, segment, std::move(build_rows),
                         std::move(probe_rows), build_layout, probe_layout,
                         build_pos, probe_pos);
  }

  // Vectorized key passes: one tight loop per side computes every key's
  // 64-bit hash and null flag up front. The hash table then stores only
  // (hash, row pointer) — no JoinKey datum copies — and its equality check
  // rejects almost every bucket collision with a single integer compare.
  // The hash codes and equality verdicts are identical to the row path's
  // JoinKey table (see join_hash.h), and with the same reserve and insertion
  // sequence the bucket layout — and hence equal_range order and output row
  // order — matches bit for bit.
  std::vector<uint64_t> build_hashes, probe_hashes;
  std::vector<uint8_t> build_null, probe_null;
  HashRowKeys(build_rows, build_pos, &build_hashes, &build_null);
  HashRowKeys(probe_rows, probe_pos, &probe_hashes, &probe_null);

  std::unordered_multiset<RowKeyRef, RowKeyRefHash, RowKeyRefEq> table;
  table.reserve(build_rows.size());
  for (size_t i = 0; i < build_rows.size(); ++i) {
    if (build_null[i]) continue;  // NULL keys never join
    table.insert(RowKeyRef{build_hashes[i], &build_rows[i], &build_pos});
  }

  const bool semi = node.join_type() == JoinType::kSemi;
  std::vector<Row> out;
  out.reserve(probe_rows.size());

  auto join_pair = [](const Row& build, const Row& probe) {
    Row joined;
    joined.reserve(build.size() + probe.size());
    joined.insert(joined.end(), build.begin(), build.end());
    joined.insert(joined.end(), probe.begin(), probe.end());
    return joined;
  };

  if (node.residual() == nullptr) {
    for (size_t p = 0; p < probe_rows.size(); ++p) {
      if (p % TableStore::kChunkRows == 0) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      }
      if (probe_null[p]) continue;
      auto [begin, end] =
          table.equal_range(RowKeyRef{probe_hashes[p], &probe_rows[p], &probe_pos});
      if (semi) {
        if (begin != end) out.push_back(probe_rows[p]);
        continue;
      }
      for (auto it = begin; it != end; ++it) {
        out.push_back(join_pair(*it->row, probe_rows[p]));
      }
    }
    return out;
  }

  ColumnLayout joint_layout = ColumnLayout::Concat(build_layout, probe_layout);
  KernelProgram residual = KernelProgram::Compile(node.residual(), joint_layout);
  KernelContext ctx;

  if (semi) {
    // Semi join stops evaluating the residual at the first keeping match —
    // later candidates must not be evaluated (they could error), so the
    // kernel runs one candidate at a time.
    ctx.Prepare(residual, 1);
    std::vector<Row> candidate(1);
    const SelVec kOne{0};
    SelVec keep;
    for (size_t p = 0; p < probe_rows.size(); ++p) {
      if (p % TableStore::kChunkRows == 0) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      }
      if (probe_null[p]) continue;
      auto [begin, end] =
          table.equal_range(RowKeyRef{probe_hashes[p], &probe_rows[p], &probe_pos});
      for (auto it = begin; it != end; ++it) {
        candidate[0] = join_pair(*it->row, probe_rows[p]);
        MPPDB_RETURN_IF_ERROR(
            EvalPredicateBatch(residual, &ctx, candidate, 0, kOne, &keep));
        if (!keep.empty()) {
          out.push_back(probe_rows[p]);
          break;
        }
      }
    }
    return out;
  }

  // Inner join with residual: batch the joined candidates and evaluate the
  // residual kernel over each full chunk, keeping survivors in order.
  ctx.Prepare(residual, KernelContext::kDefaultChunkRows);
  std::vector<Row> pending;
  pending.reserve(ctx.chunk_capacity());
  SelVec sel, keep;
  auto flush = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    IdentitySel(0, pending.size(), &sel);
    MPPDB_RETURN_IF_ERROR(EvalPredicateBatch(residual, &ctx, pending, 0, sel, &keep));
    for (uint32_t r : keep) out.push_back(std::move(pending[r]));
    pending.clear();
    return Status::OK();
  };
  for (size_t p = 0; p < probe_rows.size(); ++p) {
    if (p % TableStore::kChunkRows == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
    }
    if (probe_null[p]) continue;
    auto [begin, end] =
        table.equal_range(RowKeyRef{probe_hashes[p], &probe_rows[p], &probe_pos});
    for (auto it = begin; it != end; ++it) {
      pending.push_back(join_pair(*it->row, probe_rows[p]));
      if (pending.size() == ctx.chunk_capacity()) MPPDB_RETURN_IF_ERROR(flush());
    }
  }
  MPPDB_RETURN_IF_ERROR(flush());
  return out;
}

Result<std::vector<Row>> Executor::ExecHashAggVec(const HashAggNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> group_pos,
                         ResolvePositions(layout, node.group_by()));

  // One kernel per aggregate argument, evaluated chunk-at-a-time; count(*)
  // has no argument.
  const size_t num_aggs = node.aggs().size();
  std::vector<std::optional<KernelProgram>> programs(num_aggs);
  std::vector<KernelContext> ctxs(num_aggs);
  for (size_t i = 0; i < num_aggs; ++i) {
    if (node.aggs()[i].func == AggFunc::kCountStar) continue;
    programs[i] = KernelProgram::Compile(node.aggs()[i].arg, layout);
    ctxs[i].Prepare(*programs[i], KernelContext::kDefaultChunkRows);
  }

  // Grouping mirrors the row path exactly: same JoinKey map, same insertion
  // order, same accumulation code (AccumulateAgg) in the same row order.
  std::unordered_map<JoinKey, std::vector<AggState>, JoinKeyHash> groups;
  std::vector<JoinKey> group_order;
  // Same per-group charge formula as the row path (see ExecHashAgg).
  const size_t group_bytes = ApproxRowsBytes(1, group_pos.size() + num_aggs);
  size_t charged_bytes = 0;
  bool spill = false;
  SelVec sel;
  const size_t chunk = KernelContext::kDefaultChunkRows;
  for (size_t base = 0; base < rows.size() && !spill; base += chunk) {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
    size_t end = std::min(rows.size(), base + chunk);
    IdentitySel(base, end, &sel);
    for (size_t i = 0; i < num_aggs; ++i) {
      if (!programs[i].has_value()) continue;
      MPPDB_RETURN_IF_ERROR(EvalExprBatch(*programs[i], &ctxs[i], rows, base, sel));
    }
    for (uint32_t r : sel) {
      const Row& row = rows[r];
      JoinKey key = ExtractKey(row, group_pos);
      auto it = groups.find(key);
      if (it == groups.end()) {
        const size_t this_group_bytes =
            group_bytes + RowPayloadBytes(key.values);
        if (options_.spill) {
          MPPDB_ASSIGN_OR_RETURN(bool charged,
                                 TryChargeSpill(segment, this_group_bytes));
          if (!charged) {
            spill = true;
            break;
          }
        } else {
          MPPDB_RETURN_IF_ERROR(
              ChargeBudget(segment, this_group_bytes, "hash aggregate group"));
        }
        charged_bytes += this_group_bytes;
        it = groups.emplace(key, std::vector<AggState>(num_aggs)).first;
        group_order.push_back(key);
      }
      std::vector<AggState>& states = it->second;
      for (size_t i = 0; i < num_aggs; ++i) {
        AggState& state = states[i];
        if (node.aggs()[i].func == AggFunc::kCountStar) {
          ++state.count;
          continue;
        }
        const Datum& v = ctxs[i].slot(programs[i]->root())[r - base];
        if (v.is_null()) continue;
        MPPDB_RETURN_IF_ERROR(AccumulateAgg(state, node.aggs()[i].func, v));
      }
    }
  }

  if (spill) {
    // Same hand-off as the row path: release the partial charges and
    // re-aggregate out-of-core from the intact input. The shared
    // implementation makes the spilled vectorized result bit-identical to
    // the spilled row result by construction.
    ctx_->budget().Release(charged_bytes);
    groups.clear();
    group_order.clear();
    return SpillHashAgg(node, segment, rows, layout, group_pos);
  }

  // Scalar aggregate over empty input still has one (empty-keyed) group —
  // emitted on segment 0 only (see executor.h).
  if (node.group_by().empty() && group_order.empty() && segment == 0) {
    groups.emplace(JoinKey{}, std::vector<AggState>(num_aggs));
    group_order.push_back(JoinKey{});
  }

  std::vector<Row> out;
  out.reserve(group_order.size());
  for (const JoinKey& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    Row row = key.values;
    for (size_t i = 0; i < num_aggs; ++i) {
      row.push_back(FinalizeAgg(states[i], node.aggs()[i].func));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace mppdb
