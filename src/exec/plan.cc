#include "exec/plan.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace mppdb {

const char* PhysNodeKindToString(PhysNodeKind kind) {
  switch (kind) {
    case PhysNodeKind::kTableScan:
      return "TableScan";
    case PhysNodeKind::kCheckedPartScan:
      return "CheckedPartScan";
    case PhysNodeKind::kDynamicScan:
      return "DynamicScan";
    case PhysNodeKind::kDynamicIndexScan:
      return "DynamicIndexScan";
    case PhysNodeKind::kPartitionSelector:
      return "PartitionSelector";
    case PhysNodeKind::kSequence:
      return "Sequence";
    case PhysNodeKind::kAppend:
      return "Append";
    case PhysNodeKind::kFilter:
      return "Filter";
    case PhysNodeKind::kProject:
      return "Project";
    case PhysNodeKind::kHashJoin:
      return "HashJoin";
    case PhysNodeKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PhysNodeKind::kIndexNLJoin:
      return "IndexNLJoin";
    case PhysNodeKind::kHashAgg:
      return "HashAgg";
    case PhysNodeKind::kSort:
      return "Sort";
    case PhysNodeKind::kLimit:
      return "Limit";
    case PhysNodeKind::kTopN:
      return "TopN";
    case PhysNodeKind::kMotion:
      return "Motion";
    case PhysNodeKind::kValues:
      return "Values";
    case PhysNodeKind::kInsert:
      return "Insert";
    case PhysNodeKind::kUpdate:
      return "Update";
    case PhysNodeKind::kDelete:
      return "Delete";
  }
  return "?";
}

namespace {

std::string IdsToString(const std::vector<ColRefId>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (ColRefId id : ids) parts.push_back(std::to_string(id));
  return "[" + Join(parts, ",") + "]";
}

}  // namespace

std::vector<ColRefId> TableScanNode::OutputIds() const {
  std::vector<ColRefId> out = column_ids_;
  out.insert(out.end(), rowid_ids_.begin(), rowid_ids_.end());
  return out;
}

std::string TableScanNode::Describe() const {
  std::string out = "TableScan(table=" + std::to_string(table_oid_);
  if (unit_oid_ != table_oid_) out += ", part=" + std::to_string(unit_oid_);
  out += ", cols=" + IdsToString(column_ids_) + ")";
  return out;
}

std::string CheckedPartScanNode::Describe() const {
  return "CheckedPartScan(table=" + std::to_string(table_oid_) +
         ", part=" + std::to_string(leaf_oid_) + ", scanId=" + std::to_string(scan_id_) +
         ", cols=" + IdsToString(column_ids_) + ")";
}

std::vector<ColRefId> DynamicScanNode::OutputIds() const {
  std::vector<ColRefId> out = column_ids_;
  out.insert(out.end(), rowid_ids_.begin(), rowid_ids_.end());
  return out;
}

std::string DynamicScanNode::Describe() const {
  return "DynamicScan(table=" + std::to_string(table_oid_) +
         ", scanId=" + std::to_string(scan_id_) + ", cols=" + IdsToString(column_ids_) +
         ")";
}

namespace {

const char* IndexScanModeToString(IndexScanMode mode) {
  switch (mode) {
    case IndexScanMode::kRangeSeek:
      return "rangeSeek";
    case IndexScanMode::kOrderedWalk:
      return "orderedWalk";
    case IndexScanMode::kMinMax:
      return "minMax";
  }
  return "?";
}

std::string BoundToString(const IndexBound& bound) {
  if (bound.unbounded) return "*";
  return bound.value.ToString() + (bound.inclusive ? " incl" : " excl");
}

}  // namespace

std::string DynamicIndexScanNode::Describe() const {
  std::string out = "DynamicIndexScan(table=" + std::to_string(table_oid_);
  if (scan_id_ >= 0) out += ", scanId=" + std::to_string(scan_id_);
  out += ", cols=" + IdsToString(column_ids_) +
         ", keyCol=" + std::to_string(index_column_) +
         ", mode=" + IndexScanModeToString(mode_);
  switch (mode_) {
    case IndexScanMode::kRangeSeek:
      out += ", lo=" + BoundToString(lo_) + ", hi=" + BoundToString(hi_);
      if (residual_ != nullptr) out += ", residual=" + residual_->ToString();
      break;
    case IndexScanMode::kOrderedWalk:
      out += ascending_ ? ", asc" : ", desc";
      if (per_unit_limit_ > 0) out += ", limit=" + std::to_string(per_unit_limit_);
      break;
    case IndexScanMode::kMinMax:
      out += ascending_ ? ", min" : ", max";
      break;
  }
  out += ")";
  return out;
}

std::vector<ColRefId> PartitionSelectorNode::OutputIds() const {
  if (HasChild()) return child(0)->OutputIds();
  return {};
}

std::string PartitionSelectorNode::Describe() const {
  std::string out = "PartitionSelector(table=" + std::to_string(table_oid_) +
                    ", scanId=" + std::to_string(scan_id_);
  std::vector<std::string> preds;
  for (const auto& p : level_predicates_) {
    preds.push_back(p == nullptr ? "-" : p->ToString());
  }
  if (!preds.empty()) out += ", preds=" + Join(preds, "; ");
  out += ")";
  return out;
}

std::vector<ColRefId> ProjectNode::OutputIds() const {
  std::vector<ColRefId> out;
  out.reserve(items_.size());
  for (const auto& item : items_) out.push_back(item.output_id);
  return out;
}

std::string ProjectNode::Describe() const {
  std::vector<std::string> parts;
  for (const auto& item : items_) {
    parts.push_back(item.name + "#" + std::to_string(item.output_id) + "=" +
                    item.expr->ToString());
  }
  return "Project(" + Join(parts, ", ") + ")";
}

std::vector<ColRefId> HashJoinNode::OutputIds() const {
  std::vector<ColRefId> out = child(0)->OutputIds();
  std::vector<ColRefId> probe = child(1)->OutputIds();
  if (join_type_ == JoinType::kSemi) return probe;  // semi join keeps probe rows
  out.insert(out.end(), probe.begin(), probe.end());
  return out;
}

std::string HashJoinNode::Describe() const {
  std::string out = join_type_ == JoinType::kSemi ? "HashSemiJoin(" : "HashJoin(";
  out += "build" + IdsToString(build_keys_) + " = probe" + IdsToString(probe_keys_);
  if (residual_ != nullptr) out += ", residual=" + residual_->ToString();
  out += ")";
  return out;
}

std::vector<ColRefId> NestedLoopJoinNode::OutputIds() const {
  std::vector<ColRefId> out = child(0)->OutputIds();
  std::vector<ColRefId> inner = child(1)->OutputIds();
  if (join_type_ == JoinType::kSemi) return inner;
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

std::string NestedLoopJoinNode::Describe() const {
  std::string out =
      join_type_ == JoinType::kSemi ? "NestedLoopSemiJoin(" : "NestedLoopJoin(";
  out += predicate_ == nullptr ? "true" : predicate_->ToString();
  out += ")";
  return out;
}

std::vector<ColRefId> IndexNLJoinNode::OutputIds() const {
  std::vector<ColRefId> out = child(0)->OutputIds();
  out.insert(out.end(), inner_column_ids_.begin(), inner_column_ids_.end());
  return out;
}

std::string IndexNLJoinNode::Describe() const {
  std::string out = "IndexNLJoin(inner=" + std::to_string(inner_table_) +
                    ", keyCol=" + std::to_string(inner_key_column_) +
                    ", outerKey=#" + std::to_string(outer_key_);
  if (residual_ != nullptr) out += ", residual=" + residual_->ToString();
  out += ")";
  return out;
}

std::vector<ColRefId> HashAggNode::OutputIds() const {
  std::vector<ColRefId> out = group_by_;
  for (const auto& agg : aggs_) out.push_back(agg.output_id);
  return out;
}

std::string HashAggNode::Describe() const {
  std::vector<std::string> parts;
  for (const auto& agg : aggs_) {
    std::string rendered = AggFuncToString(agg.func);
    if (agg.func != AggFunc::kCountStar) {
      rendered += "(" + (agg.arg ? agg.arg->ToString() : "*") + ")";
    }
    parts.push_back(rendered);
  }
  return "HashAgg(groupBy=" + IdsToString(group_by_) + ", aggs=" + Join(parts, ", ") +
         ")";
}

std::string SortNode::Describe() const {
  std::vector<std::string> parts;
  for (const auto& key : keys_) {
    parts.push_back(std::to_string(key.column) + (key.ascending ? " asc" : " desc"));
  }
  return "Sort(" + Join(parts, ", ") + ")";
}

std::string TopNNode::Describe() const {
  std::vector<std::string> parts;
  for (const auto& key : keys_) {
    parts.push_back(std::to_string(key.column) + (key.ascending ? " asc" : " desc"));
  }
  return "TopN(" + std::to_string(limit_) + " by " + Join(parts, ", ") + ")";
}

std::string MotionNode::Describe() const {
  switch (motion_kind_) {
    case MotionKind::kGather:
      return "GatherMotion";
    case MotionKind::kBroadcast:
      return "BroadcastMotion";
    case MotionKind::kRedistribute:
      return "RedistributeMotion(" + IdsToString(hash_columns_) + ")";
  }
  return "Motion";
}

std::string InsertNode::Describe() const {
  return "Insert(table=" + std::to_string(table_oid_) + ")";
}

std::string UpdateNode::Describe() const {
  std::vector<std::string> parts;
  for (const auto& item : set_items_) {
    parts.push_back("col" + std::to_string(item.column_index) + "=" +
                    item.value->ToString());
  }
  return "Update(table=" + std::to_string(table_oid_) + ", set=" + Join(parts, ", ") +
         ")";
}

std::string DeleteNode::Describe() const {
  return "Delete(table=" + std::to_string(table_oid_) + ")";
}

namespace {

/// Always-constructing node rebuild: a fresh mutable copy of `node` over
/// `children`, without annotations (callers decide whether to copy or
/// replace them).
std::shared_ptr<PhysicalNode> RebuildNode(const PhysPtr& node,
                                          std::vector<PhysPtr> children) {
  MPPDB_CHECK(children.size() == node->children().size());
  switch (node->kind()) {
    case PhysNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(*node);
      return std::make_shared<TableScanNode>(scan.table_oid(), scan.unit_oid(),
                                             scan.column_ids(), scan.rowid_ids());
    }
    case PhysNodeKind::kCheckedPartScan: {
      const auto& scan = static_cast<const CheckedPartScanNode&>(*node);
      return std::make_shared<CheckedPartScanNode>(scan.table_oid(), scan.leaf_oid(),
                                                   scan.scan_id(), scan.column_ids());
    }
    case PhysNodeKind::kDynamicScan: {
      const auto& scan = static_cast<const DynamicScanNode&>(*node);
      return std::make_shared<DynamicScanNode>(scan.table_oid(), scan.scan_id(),
                                               scan.column_ids(), scan.rowid_ids());
    }
    case PhysNodeKind::kDynamicIndexScan: {
      const auto& scan = static_cast<const DynamicIndexScanNode&>(*node);
      return std::make_shared<DynamicIndexScanNode>(
          scan.table_oid(), scan.scan_id(), scan.column_ids(), scan.index_column(),
          scan.mode(), scan.lo(), scan.hi(), scan.residual(), scan.ascending(),
          scan.per_unit_limit());
    }
    case PhysNodeKind::kValues: {
      const auto& values = static_cast<const ValuesNode&>(*node);
      return std::make_shared<ValuesNode>(values.rows(), values.OutputIds());
    }
    case PhysNodeKind::kPartitionSelector: {
      const auto& sel = static_cast<const PartitionSelectorNode&>(*node);
      return std::make_shared<PartitionSelectorNode>(
          sel.table_oid(), sel.scan_id(), sel.level_keys(), sel.level_predicates(),
          children.empty() ? nullptr : children[0]);
    }
    case PhysNodeKind::kSequence:
      return std::make_shared<SequenceNode>(std::move(children));
    case PhysNodeKind::kAppend:
      return std::make_shared<AppendNode>(std::move(children));
    case PhysNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      return std::make_shared<FilterNode>(filter.predicate(), children[0]);
    }
    case PhysNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      return std::make_shared<ProjectNode>(project.items(), children[0]);
    }
    case PhysNodeKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(*node);
      return std::make_shared<HashJoinNode>(join.join_type(), join.build_keys(),
                                            join.probe_keys(), join.residual(),
                                            children[0], children[1]);
    }
    case PhysNodeKind::kNestedLoopJoin: {
      const auto& join = static_cast<const NestedLoopJoinNode&>(*node);
      return std::make_shared<NestedLoopJoinNode>(join.join_type(), join.predicate(),
                                                  children[0], children[1]);
    }
    case PhysNodeKind::kIndexNLJoin: {
      const auto& join = static_cast<const IndexNLJoinNode&>(*node);
      return std::make_shared<IndexNLJoinNode>(children[0], join.inner_table(),
                                               join.inner_column_ids(),
                                               join.inner_key_column(),
                                               join.outer_key(), join.residual());
    }
    case PhysNodeKind::kHashAgg: {
      const auto& agg = static_cast<const HashAggNode&>(*node);
      return std::make_shared<HashAggNode>(agg.group_by(), agg.aggs(), children[0]);
    }
    case PhysNodeKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(sort.keys(), children[0]);
    }
    case PhysNodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(*node);
      return std::make_shared<LimitNode>(limit.limit(), children[0]);
    }
    case PhysNodeKind::kTopN: {
      const auto& topn = static_cast<const TopNNode&>(*node);
      return std::make_shared<TopNNode>(topn.keys(), topn.limit(), children[0]);
    }
    case PhysNodeKind::kMotion: {
      const auto& motion = static_cast<const MotionNode&>(*node);
      return std::make_shared<MotionNode>(motion.motion_kind(), motion.hash_columns(),
                                          children[0]);
    }
    case PhysNodeKind::kInsert: {
      const auto& insert = static_cast<const InsertNode&>(*node);
      return std::make_shared<InsertNode>(insert.table_oid(), insert.OutputIds()[0],
                                          children[0]);
    }
    case PhysNodeKind::kUpdate: {
      const auto& update = static_cast<const UpdateNode&>(*node);
      return std::make_shared<UpdateNode>(update.table_oid(), update.table_column_ids(),
                                          update.rowid_ids(), update.set_items(),
                                          update.OutputIds()[0], children[0]);
    }
    case PhysNodeKind::kDelete: {
      const auto& del = static_cast<const DeleteNode&>(*node);
      return std::make_shared<DeleteNode>(del.table_oid(), del.rowid_ids(),
                                          del.OutputIds()[0], children[0]);
    }
  }
  MPPDB_CHECK(false);
  return nullptr;
}

}  // namespace

PhysPtr CloneWithChildren(const PhysPtr& node, std::vector<PhysPtr> children) {
  MPPDB_CHECK(children.size() == node->children().size());
  bool same = true;
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] != node->child(i)) {
      same = false;
      break;
    }
  }
  if (same) return node;
  std::shared_ptr<PhysicalNode> clone = RebuildNode(node, std::move(children));
  clone->CopyJoinFiltersFrom(*node);
  return clone;
}

PhysPtr WithJoinFilters(const PhysPtr& node, std::vector<PhysPtr> children,
                        JoinFilterAnnotations annotations) {
  std::shared_ptr<PhysicalNode> clone = RebuildNode(node, std::move(children));
  clone->set_join_filters(std::move(annotations));
  return clone;
}

namespace {

void PlanToStringRecursive(const PhysPtr& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->Describe());
  out->append("\n");
  for (const auto& child : node->children()) {
    PlanToStringRecursive(child, depth + 1, out);
  }
}

void SerializeRecursive(const PhysPtr& node, std::string* out) {
  // Deterministic pre-order rendering; Describe() includes every
  // partition-identifying annotation, so Planner plans that enumerate
  // partitions serialize proportionally larger.
  out->append(node->Describe());
  out->append("{");
  for (const auto& child : node->children()) {
    SerializeRecursive(child, out);
  }
  out->append("}");
}

}  // namespace

std::string PlanToString(const PhysPtr& plan) {
  std::string out;
  PlanToStringRecursive(plan, 0, &out);
  return out;
}

std::string SerializePlan(const PhysPtr& plan) {
  std::string out;
  SerializeRecursive(plan, &out);
  return out;
}

}  // namespace mppdb
