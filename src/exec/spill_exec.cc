// Out-of-core execution (Executor::Options::spill; DESIGN.md §14).
//
// Entered when TryChargeSpill refuses the in-memory state of a hash join
// build table, a hash aggregate's grouping state, or a sort buffer. One
// row-oriented implementation serves both the row and vectorized paths, so
// cross-path bit-identity of spilled results is structural; identity with
// the *in-memory oracle* — the stats-only-visible invariant — rests on
// three order-restoration arguments:
//
//  * Hash join: spill partitioning preserves the relative order of rows on
//    each side, and every row of a join key lands in exactly one partition.
//    A partition joined in memory uses the oracle's own hash-table code
//    over rows inserted in original relative order, so each probe row's
//    matches come out in the oracle's per-key order (libstdc++ iterates an
//    equal-key bucket chain in reverse insertion order — the same property
//    the vectorized path's bucket-layout identity already relies on). Probe
//    rows carry their global input index as a prepended tag column; a final
//    stable sort by (tag, emission rank) reassembles global probe order.
//    The bounded-depth fallback never materializes the partition: it
//    streams budget-sized build blocks, ranks each match by its reverse
//    build position — the oracle's per-key order — and lets the same final
//    sort interleave them correctly.
//
//  * Hash aggregate: all rows of a group share a partition in original
//    relative order, so per-group accumulation order (and thus float sums)
//    matches the oracle exactly. Each group records the global input index
//    of its first row; sorting finished groups by that index reproduces the
//    oracle's first-appearance emission order.
//
//  * Sort: runs are contiguous input slices sorted with the oracle's
//    comparator, and the k-way merge breaks equal keys toward the
//    lower-numbered run — a stable merge of stable-sorted contiguous
//    slices, which is exactly one global stable sort.
//
// Documented divergence (DESIGN.md §14): a spilled join may evaluate a
// residual predicate on candidate pairs the oracle's early-outs skipped
// (semi-join short circuits, fallback block order). Kept rows are
// identical; the difference is observable only when a residual errors.
//
// Memory model: spill working state (one partition's build table, one run
// buffer, merge read-back buffers, streamed batches) is charged against the
// budget exactly like the in-memory state it replaces — TryChargeSpill
// first, recursing or shrinking on refusal, with the irreducible minimum
// (one spill block, one run floor, one merge buffer set) a mandatory
// ChargeBudget that surfaces kResourceExhausted when even that cannot fit.
// Operator inputs and outputs are never charged, matching the oracle.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "exec/agg_state.h"
#include "exec/executor.h"
#include "exec/join_hash.h"
#include "runtime/spill/row_codec.h"
#include "runtime/spill/spill_file.h"

namespace mppdb {

namespace {

/// Fan-out of one hash partitioning pass.
constexpr size_t kSpillFanout = 8;
/// Partitioning depth bound: a partition still overfull after this many
/// fresh-salt re-partitions (e.g. all-duplicate keys, which no hash can
/// split) takes the block-streaming fallback instead of recursing forever.
constexpr int kMaxSpillDepth = 4;
/// Rows per serialized batch when partitioning (the unit of spill I/O).
constexpr size_t kSpillBatchRows = 512;
/// Run-buffer floor for the external sort; below this the charge becomes
/// mandatory (a budget that cannot hold 16 rows of keys cannot sort).
constexpr size_t kMinRunRows = 16;
/// Max runs merged per k-way merge pass; more runs cascade through
/// intermediate merged runs so read-back buffers stay bounded.
constexpr size_t kMergeFanIn = 16;

/// splitmix64 finalizer: decorrelates the spill partition choice from the
/// hash table's bucket choice (both start from JoinKeyHash) and, salted per
/// depth, from the parent partition's choice.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t SpillSalt(int depth) {
  return Mix(0x5b111c0deull + static_cast<uint64_t>(depth) * 0x9e3779b97f4a7c15ull);
}

size_t PartitionOf(const JoinKey& key, int depth) {
  return static_cast<size_t>(
      Mix(static_cast<uint64_t>(JoinKeyHash{}(key)) ^ SpillSalt(depth)) %
      kSpillFanout);
}

/// ExtractKey with a column offset, for rows carrying a prepended tag.
JoinKey ExtractKeyAt(const Row& row, const std::vector<int>& positions,
                     size_t offset) {
  JoinKey key;
  key.values.reserve(positions.size());
  for (int pos : positions) {
    key.values.push_back(row[static_cast<size_t>(pos) + offset]);
  }
  return key;
}

/// In-memory footprint of `row` under the budget's estimate model.
size_t RowFootprint(const Row& row) {
  return ApproxRowsBytes(1, row.size()) + RowPayloadBytes(row);
}

/// One spill partition file being written: rows buffer into batches, the
/// file is created lazily on the first flush (empty partitions touch no
/// filesystem state), and the in-memory footprint of everything written is
/// tracked so the reader knows what re-materializing would charge.
struct PartWriter {
  std::unique_ptr<SpillFile> file;
  std::vector<Row> buffer;
  size_t rows = 0;
  size_t mem_bytes = 0;
};

}  // namespace

Result<std::vector<Row>> Executor::SpillHashJoin(
    const HashJoinNode& node, int segment, std::vector<Row> build_rows,
    std::vector<Row> probe_rows, const ColumnLayout& build_layout,
    const ColumnLayout& probe_layout, const std::vector<int>& build_pos,
    const std::vector<int>& probe_pos) {
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  MPPDB_ASSIGN_OR_RETURN(SpillFileManager * manager, EnsureSpillManager());
  const bool semi = node.join_type() == JoinType::kSemi;
  const ColumnLayout joint_layout =
      ColumnLayout::Concat(build_layout, probe_layout);

  // Output rows tagged with (global probe index, emission rank); the final
  // stable sort by the pair restores the oracle's global output order. All
  // of one probe row's matches come from one partition, so ranks only need
  // to be correct relative to entries with the same index: the in-memory
  // partition path uses a monotone emission counter, the fallback computes
  // the oracle's reverse-build-position rank directly.
  struct Tagged {
    int64_t index;
    int64_t rank;
    Row row;
  };
  std::vector<Tagged> tagged;
  int64_t emission = 0;

  auto flush = [&](PartWriter& w) -> Status {
    if (w.buffer.empty()) return Status::OK();
    if (w.file == nullptr) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.open"));
      MPPDB_ASSIGN_OR_RETURN(w.file, manager->Create());
      ++stats.spill_partitions;
    }
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.write"));
    MPPDB_ASSIGN_OR_RETURN(size_t bytes,
                           w.file->WriteBatch(w.buffer, 0, w.buffer.size()));
    stats.spill_bytes_written += bytes;
    w.buffer.clear();
    return Status::OK();
  };
  auto add = [&](PartWriter& w, Row row) -> Status {
    w.mem_bytes += RowFootprint(row);
    ++w.rows;
    w.buffer.push_back(std::move(row));
    if (w.buffer.size() >= kSpillBatchRows) return flush(w);
    return Status::OK();
  };
  auto read_all = [&](PartWriter& w, std::vector<Row>* out) -> Status {
    if (w.file == nullptr) return Status::OK();
    MPPDB_RETURN_IF_ERROR(w.file->Rewind());
    for (;;) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
      MPPDB_ASSIGN_OR_RETURN(size_t bytes, w.file->ReadBatch(out));
      if (bytes == 0) break;
      stats.spill_bytes_read += bytes;
    }
    return Status::OK();
  };

  struct Part {
    PartWriter build;
    PartWriter probe;
  };

  // Depth-0 partitioning straight from the in-memory child outputs. NULL
  // keys never join, so both sides drop them here — exactly the rows the
  // oracle's table insert / probe loop skips.
  std::vector<Part> initial(kSpillFanout);
  ++stats.spill_passes;
  size_t until_check = 0;
  for (Row& row : build_rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    JoinKey key = ExtractKey(row, build_pos);
    if (key.HasNull()) continue;
    MPPDB_RETURN_IF_ERROR(add(initial[PartitionOf(key, 0)].build, std::move(row)));
  }
  build_rows.clear();
  build_rows.shrink_to_fit();
  until_check = 0;
  for (size_t i = 0; i < probe_rows.size(); ++i) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    JoinKey key = ExtractKey(probe_rows[i], probe_pos);
    if (key.HasNull()) continue;
    Row row;
    row.reserve(probe_rows[i].size() + 1);
    row.push_back(Datum::Int64(static_cast<int64_t>(i)));
    row.insert(row.end(), probe_rows[i].begin(), probe_rows[i].end());
    MPPDB_RETURN_IF_ERROR(add(initial[PartitionOf(key, 0)].probe, std::move(row)));
  }
  probe_rows.clear();
  probe_rows.shrink_to_fit();

  struct Pending {
    int depth;
    Part part;
  };
  std::vector<Pending> work;
  for (Part& p : initial) {
    MPPDB_RETURN_IF_ERROR(flush(p.build));
    MPPDB_RETURN_IF_ERROR(flush(p.probe));
    work.push_back(Pending{1, std::move(p)});
  }
  initial.clear();

  // Evaluates the residual (if any) over build+probe and appends the
  // surviving output row to `tagged`. Returns whether the pair was kept.
  auto emit_pair = [&](const Row& build, const Row& probe, int64_t index,
                       int64_t rank) -> Result<bool> {
    Row joined;
    joined.reserve(build.size() + probe.size());
    joined.insert(joined.end(), build.begin(), build.end());
    joined.insert(joined.end(), probe.begin(), probe.end());
    if (node.residual() != nullptr) {
      MPPDB_ASSIGN_OR_RETURN(bool keep,
                             EvalPredicate(node.residual(), joint_layout, joined));
      if (!keep) return false;
    }
    if (semi) {
      tagged.push_back(Tagged{index, rank, probe});
    } else {
      tagged.push_back(Tagged{index, rank, std::move(joined)});
    }
    return true;
  };

  while (!work.empty()) {
    Pending pending = std::move(work.back());
    work.pop_back();
    Part& part = pending.part;
    if (part.build.rows == 0 || part.probe.rows == 0) continue;

    MPPDB_ASSIGN_OR_RETURN(bool charged,
                           TryChargeSpill(segment, part.build.mem_bytes));
    if (charged) {
      // The partition fits: run the oracle's own join over it. Build rows
      // come back in original relative order, so the table's per-key match
      // order is the oracle's.
      std::vector<Row> bpart;
      Status read_status = read_all(part.build, &bpart);
      if (!read_status.ok()) {
        ctx_->budget().Release(part.build.mem_bytes);
        return read_status;
      }
      std::vector<Row> ppart;
      read_status = read_all(part.probe, &ppart);
      if (!read_status.ok()) {
        ctx_->budget().Release(part.build.mem_bytes);
        return read_status;
      }
      auto join_partition = [&]() -> Status {
        std::unordered_multimap<JoinKey, const Row*, JoinKeyHash> table;
        table.reserve(bpart.size());
        for (const Row& row : bpart) {
          table.emplace(ExtractKey(row, build_pos), &row);
        }
        size_t checks = 0;
        for (const Row& tagged_probe : ppart) {
          if (checks++ % TableStore::kChunkRows == 0) {
            MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
          }
          const int64_t index = tagged_probe[0].int64_value();
          const Row probe(tagged_probe.begin() + 1, tagged_probe.end());
          JoinKey key = ExtractKey(probe, probe_pos);
          auto [begin, end] = table.equal_range(key);
          for (auto it = begin; it != end; ++it) {
            MPPDB_ASSIGN_OR_RETURN(bool kept,
                                   emit_pair(*it->second, probe, index, emission));
            ++emission;
            if (kept && semi) break;  // one match is enough for semi join
          }
        }
        return Status::OK();
      };
      Status join_status = join_partition();
      ctx_->budget().Release(part.build.mem_bytes);
      MPPDB_RETURN_IF_ERROR(join_status);
      continue;
    }

    if (pending.depth < kMaxSpillDepth) {
      // Still overfull: re-partition both sides with this depth's fresh
      // salt. Probe rows keep their tag column (keys shift by one).
      ++stats.spill_passes;
      std::vector<Part> children(kSpillFanout);
      auto repartition = [&](PartWriter& src, bool is_probe) -> Status {
        if (src.file == nullptr) return Status::OK();
        MPPDB_RETURN_IF_ERROR(src.file->Rewind());
        std::vector<Row> batch;
        for (;;) {
          batch.clear();
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
          MPPDB_ASSIGN_OR_RETURN(size_t bytes, src.file->ReadBatch(&batch));
          if (bytes == 0) break;
          stats.spill_bytes_read += bytes;
          for (Row& row : batch) {
            JoinKey key = is_probe ? ExtractKeyAt(row, probe_pos, 1)
                                   : ExtractKey(row, build_pos);
            Part& child = children[PartitionOf(key, pending.depth)];
            MPPDB_RETURN_IF_ERROR(
                add(is_probe ? child.probe : child.build, std::move(row)));
          }
        }
        return Status::OK();
      };
      MPPDB_RETURN_IF_ERROR(repartition(part.build, /*is_probe=*/false));
      MPPDB_RETURN_IF_ERROR(repartition(part.probe, /*is_probe=*/true));
      for (Part& child : children) {
        MPPDB_RETURN_IF_ERROR(flush(child.build));
        MPPDB_RETURN_IF_ERROR(flush(child.probe));
        work.push_back(Pending{pending.depth + 1, std::move(child)});
      }
      continue;
    }

    // Depth exhausted (e.g. all-duplicate keys, which no salt can split):
    // block-streaming fallback. Budget-sized blocks of the build file are
    // joined against streamed probe batches; each match is ranked by its
    // reverse build position — the oracle's per-key candidate order — so
    // the final sort interleaves blocks correctly. Nothing is ever fully
    // materialized; the probe file is re-read once per block.
    {
      const size_t per_row =
          (part.build.mem_bytes + part.build.rows - 1) / part.build.rows;
      const int64_t total_build = static_cast<int64_t>(part.build.rows);
      std::unordered_set<int64_t> satisfied;  // semi: probes already matched
      MPPDB_RETURN_IF_ERROR(part.build.file->Rewind());
      bool build_eof = false;
      int64_t base = 0;
      while (!build_eof) {
        // Grow one block batch by batch while the budget allows; the first
        // batch of a block is mandatory (a budget that cannot hold one
        // spill batch cannot join at all).
        std::vector<Row> block;
        size_t block_charge = 0;
        for (;;) {
          const size_t batch_charge = per_row * kSpillBatchRows;
          if (block.empty()) {
            MPPDB_RETURN_IF_ERROR(
                ChargeBudget(segment, batch_charge, "hash join spill block"));
          } else {
            MPPDB_ASSIGN_OR_RETURN(bool more,
                                   TryChargeSpill(segment, batch_charge));
            if (!more) break;
          }
          block_charge += batch_charge;
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
          Result<size_t> bytes = part.build.file->ReadBatch(&block);
          if (!bytes.ok()) {
            ctx_->budget().Release(block_charge);
            return bytes.status();
          }
          if (bytes.value() == 0) {
            build_eof = true;
            break;
          }
          stats.spill_bytes_read += bytes.value();
        }
        auto process_block = [&]() -> Status {
          if (block.empty()) return Status::OK();
          std::unordered_multimap<JoinKey, size_t, JoinKeyHash> table;
          table.reserve(block.size());
          for (size_t i = 0; i < block.size(); ++i) {
            table.emplace(ExtractKey(block[i], build_pos), i);
          }
          MPPDB_RETURN_IF_ERROR(part.probe.file->Rewind());
          std::vector<Row> pbatch;
          for (;;) {
            pbatch.clear();
            MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
            MPPDB_ASSIGN_OR_RETURN(size_t bytes,
                                   part.probe.file->ReadBatch(&pbatch));
            if (bytes == 0) break;
            stats.spill_bytes_read += bytes;
            for (const Row& tagged_probe : pbatch) {
              const int64_t index = tagged_probe[0].int64_value();
              if (semi && satisfied.count(index) > 0) continue;
              const Row probe(tagged_probe.begin() + 1, tagged_probe.end());
              JoinKey key = ExtractKey(probe, probe_pos);
              auto [begin, end] = table.equal_range(key);
              for (auto it = begin; it != end; ++it) {
                const int64_t rank =
                    total_build - 1 - (base + static_cast<int64_t>(it->second));
                MPPDB_ASSIGN_OR_RETURN(
                    bool kept, emit_pair(block[it->second], probe, index,
                                         semi ? 0 : rank));
                if (kept && semi) {
                  satisfied.insert(index);
                  break;
                }
              }
            }
          }
          return Status::OK();
        };
        Status block_status = process_block();
        ctx_->budget().Release(block_charge);
        MPPDB_RETURN_IF_ERROR(block_status);
        base += static_cast<int64_t>(block.size());
      }
    }
  }

  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.index != b.index) return a.index < b.index;
                     return a.rank < b.rank;
                   });
  std::vector<Row> out;
  out.reserve(tagged.size());
  for (Tagged& t : tagged) out.push_back(std::move(t.row));
  return out;
}

Result<std::vector<Row>> Executor::SpillHashAgg(const HashAggNode& node,
                                                int segment,
                                                const std::vector<Row>& rows,
                                                const ColumnLayout& layout,
                                                const std::vector<int>& group_pos) {
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  MPPDB_ASSIGN_OR_RETURN(SpillFileManager * manager, EnsureSpillManager());
  const size_t num_aggs = node.aggs().size();
  const size_t group_bytes =
      ApproxRowsBytes(1, group_pos.size() + num_aggs);

  auto flush = [&](PartWriter& w) -> Status {
    if (w.buffer.empty()) return Status::OK();
    if (w.file == nullptr) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.open"));
      MPPDB_ASSIGN_OR_RETURN(w.file, manager->Create());
      ++stats.spill_partitions;
    }
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.write"));
    MPPDB_ASSIGN_OR_RETURN(size_t bytes,
                           w.file->WriteBatch(w.buffer, 0, w.buffer.size()));
    stats.spill_bytes_written += bytes;
    w.buffer.clear();
    return Status::OK();
  };
  auto add = [&](PartWriter& w, Row row) -> Status {
    w.mem_bytes += RowFootprint(row);
    ++w.rows;
    w.buffer.push_back(std::move(row));
    if (w.buffer.size() >= kSpillBatchRows) return flush(w);
    return Status::OK();
  };

  // Finished groups tagged with the global input index of their first row;
  // the final sort by that index reproduces the oracle's first-appearance
  // emission order (first indexes are distinct across groups).
  struct TaggedGroup {
    int64_t first_index;
    Row row;
  };
  std::vector<TaggedGroup> finished;

  // Depth-0 partitioning from the in-memory input, tagging each row with
  // its global index. NULL group keys group together (Datum::Compare treats
  // NULL == NULL), exactly as the oracle's JoinKey map does — nothing is
  // dropped here.
  std::vector<PartWriter> initial(kSpillFanout);
  ++stats.spill_passes;
  size_t until_check = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    JoinKey key = ExtractKey(rows[i], group_pos);
    Row row;
    row.reserve(rows[i].size() + 1);
    row.push_back(Datum::Int64(static_cast<int64_t>(i)));
    row.insert(row.end(), rows[i].begin(), rows[i].end());
    MPPDB_RETURN_IF_ERROR(add(initial[PartitionOf(key, 0)], std::move(row)));
  }

  struct Pending {
    int depth;
    PartWriter part;
  };
  std::vector<Pending> work;
  for (PartWriter& w : initial) {
    MPPDB_RETURN_IF_ERROR(flush(w));
    work.push_back(Pending{1, std::move(w)});
  }
  initial.clear();

  // Aggregates one stream of tagged rows through the oracle's accumulation
  // code, then finalizes every group in arrival order into `finished`.
  // Rows arrive in original relative order, so per-group accumulation order
  // — and with it float sums — is bit-identical to the oracle's.
  struct GroupState {
    std::vector<AggState> states;
    int64_t first_index;
  };
  auto accumulate = [&](std::unordered_map<JoinKey, GroupState, JoinKeyHash>& groups,
                        std::vector<JoinKey>& order, const Row& tagged_row,
                        bool charge_groups) -> Status {
    const int64_t index = tagged_row[0].int64_value();
    const Row row(tagged_row.begin() + 1, tagged_row.end());
    JoinKey key = ExtractKey(row, group_pos);
    auto it = groups.find(key);
    if (it == groups.end()) {
      if (charge_groups) {
        MPPDB_RETURN_IF_ERROR(
            ChargeBudget(segment, group_bytes + RowPayloadBytes(key.values),
                         "hash aggregate group"));
      }
      GroupState fresh;
      fresh.states.assign(num_aggs, AggState());
      fresh.first_index = index;
      it = groups.emplace(key, std::move(fresh)).first;
      order.push_back(std::move(key));
    }
    std::vector<AggState>& states = it->second.states;
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggItem& agg = node.aggs()[a];
      AggState& state = states[a];
      if (agg.func == AggFunc::kCountStar) {
        ++state.count;
        continue;
      }
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(agg.arg, layout, row));
      if (v.is_null()) continue;
      MPPDB_RETURN_IF_ERROR(AccumulateAgg(state, agg.func, v));
    }
    return Status::OK();
  };
  auto finalize = [&](std::unordered_map<JoinKey, GroupState, JoinKeyHash>& groups,
                      std::vector<JoinKey>& order) {
    for (const JoinKey& key : order) {
      GroupState& group = groups.at(key);
      Row row = key.values;
      for (size_t a = 0; a < num_aggs; ++a) {
        row.push_back(FinalizeAgg(group.states[a], node.aggs()[a].func));
      }
      finished.push_back(TaggedGroup{group.first_index, std::move(row)});
    }
  };

  while (!work.empty()) {
    Pending pending = std::move(work.back());
    work.pop_back();
    PartWriter& part = pending.part;
    if (part.rows == 0) continue;

    // The partition's whole-row footprint bounds its grouping state (one
    // group per row at worst), so a charged partition aggregates with no
    // per-group charges.
    MPPDB_ASSIGN_OR_RETURN(bool charged, TryChargeSpill(segment, part.mem_bytes));
    if (charged) {
      auto aggregate_partition = [&]() -> Status {
        std::unordered_map<JoinKey, GroupState, JoinKeyHash> groups;
        std::vector<JoinKey> order;
        MPPDB_RETURN_IF_ERROR(part.file->Rewind());
        std::vector<Row> batch;
        size_t checks = 0;
        for (;;) {
          batch.clear();
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
          MPPDB_ASSIGN_OR_RETURN(size_t bytes, part.file->ReadBatch(&batch));
          if (bytes == 0) break;
          stats.spill_bytes_read += bytes;
          for (const Row& tagged_row : batch) {
            if (checks++ % TableStore::kChunkRows == 0) {
              MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
            }
            MPPDB_RETURN_IF_ERROR(
                accumulate(groups, order, tagged_row, /*charge_groups=*/false));
          }
        }
        finalize(groups, order);
        return Status::OK();
      };
      Status agg_status = aggregate_partition();
      ctx_->budget().Release(part.mem_bytes);
      MPPDB_RETURN_IF_ERROR(agg_status);
      continue;
    }

    if (pending.depth < kMaxSpillDepth) {
      ++stats.spill_passes;
      std::vector<PartWriter> children(kSpillFanout);
      MPPDB_RETURN_IF_ERROR(part.file->Rewind());
      std::vector<Row> batch;
      for (;;) {
        batch.clear();
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
        MPPDB_ASSIGN_OR_RETURN(size_t bytes, part.file->ReadBatch(&batch));
        if (bytes == 0) break;
        stats.spill_bytes_read += bytes;
        for (Row& row : batch) {
          JoinKey key = ExtractKeyAt(row, group_pos, 1);
          MPPDB_RETURN_IF_ERROR(
              add(children[PartitionOf(key, pending.depth)], std::move(row)));
        }
      }
      for (PartWriter& child : children) {
        MPPDB_RETURN_IF_ERROR(flush(child));
        work.push_back(Pending{pending.depth + 1, std::move(child)});
      }
      continue;
    }

    // Depth exhausted (e.g. all rows share one group key): stream the
    // partition with the oracle's own per-group mandatory charges — state
    // here is truly per-distinct-group, so a one-group partition needs O(1)
    // memory however large the file is. If even the distinct groups don't
    // fit, this surfaces the oracle's kResourceExhausted.
    {
      size_t charged_bytes = 0;
      auto stream_partition = [&]() -> Status {
        std::unordered_map<JoinKey, GroupState, JoinKeyHash> groups;
        std::vector<JoinKey> order;
        MPPDB_RETURN_IF_ERROR(part.file->Rewind());
        std::vector<Row> batch;
        size_t checks = 0;
        for (;;) {
          batch.clear();
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
          MPPDB_ASSIGN_OR_RETURN(size_t bytes, part.file->ReadBatch(&batch));
          if (bytes == 0) break;
          stats.spill_bytes_read += bytes;
          for (const Row& tagged_row : batch) {
            if (checks++ % TableStore::kChunkRows == 0) {
              MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
            }
            const size_t before = order.size();
            MPPDB_RETURN_IF_ERROR(
                accumulate(groups, order, tagged_row, /*charge_groups=*/true));
            if (order.size() > before) {
              charged_bytes +=
                  group_bytes + RowPayloadBytes(order.back().values);
            }
          }
        }
        finalize(groups, order);
        return Status::OK();
      };
      Status stream_status = stream_partition();
      ctx_->budget().Release(charged_bytes);
      MPPDB_RETURN_IF_ERROR(stream_status);
    }
  }

  std::sort(finished.begin(), finished.end(),
            [](const TaggedGroup& a, const TaggedGroup& b) {
              return a.first_index < b.first_index;
            });
  std::vector<Row> out;
  out.reserve(finished.size());
  for (TaggedGroup& g : finished) out.push_back(std::move(g.row));
  return out;
}

Result<std::vector<Row>> Executor::SpillSortRows(
    const SortNode& node, int segment, std::vector<Row> rows,
    const std::vector<int>& positions, const std::vector<bool>& ascending,
    size_t sort_bytes) {
  (void)node;
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  const size_t n = rows.size();
  const size_t num_keys = positions.size();
  // No keys: every row compares equal, a stable sort is the identity.
  if (num_keys == 0 || n == 0) return rows;
  MPPDB_ASSIGN_OR_RETURN(SpillFileManager * manager, EnsureSpillManager());

  // The oracle's comparator, applied to rows directly: same Datum::Compare,
  // same ascending handling, so a stable sort of any slice orders it
  // exactly as the oracle's key-buffer permutation sort would.
  auto row_less = [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < num_keys; ++i) {
      int c = Datum::Compare(a[static_cast<size_t>(positions[i])],
                             b[static_cast<size_t>(positions[i])]);
      if (c != 0) return ascending[i] ? c < 0 : c > 0;
    }
    return false;
  };

  // Budget-sized runs: halve from the full input until the run buffer fits,
  // flooring at kMinRunRows where the charge becomes mandatory.
  const size_t per_row = (sort_bytes + n - 1) / n;
  size_t run_rows = n;
  size_t run_charge = 0;
  for (;;) {
    run_charge = run_rows * per_row;
    MPPDB_ASSIGN_OR_RETURN(bool charged, TryChargeSpill(segment, run_charge));
    if (charged) break;
    if (run_rows <= kMinRunRows) {
      MPPDB_RETURN_IF_ERROR(ChargeBudget(segment, run_charge, "sort run buffer"));
      break;
    }
    run_rows /= 2;
  }

  // Read-back frame size for the merge: sized so one merge group's buffers
  // (kMergeFanIn frames) cost about half a run buffer — memory the merge
  // can charge because the run buffer has been released by then.
  const size_t frame_rows = std::max<size_t>(1, run_rows / (2 * kMergeFanIn));

  // Run generation: sort contiguous slices with the oracle's comparator and
  // spill each as one run file, framed for the merge's read-back.
  struct RunState {
    std::unique_ptr<SpillFile> file;
    std::vector<Row> buffer;
    size_t pos = 0;
    bool eof = false;
  };
  std::vector<RunState> runs;
  ++stats.spill_passes;
  auto write_run = [&](std::vector<Row>& source, size_t begin,
                       size_t end) -> Status {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.open"));
    MPPDB_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> file, manager->Create());
    for (size_t f = begin; f < end; f += frame_rows) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.write"));
      MPPDB_ASSIGN_OR_RETURN(
          size_t bytes,
          file->WriteBatch(source, f, std::min(end, f + frame_rows)));
      stats.spill_bytes_written += bytes;
    }
    RunState run;
    run.file = std::move(file);
    runs.push_back(std::move(run));
    return Status::OK();
  };
  {
    auto generate = [&]() -> Status {
      for (size_t base = 0; base < n; base += run_rows) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
        const size_t end = std::min(n, base + run_rows);
        std::stable_sort(rows.begin() + static_cast<ptrdiff_t>(base),
                         rows.begin() + static_cast<ptrdiff_t>(end), row_less);
        MPPDB_RETURN_IF_ERROR(write_run(rows, base, end));
      }
      return Status::OK();
    };
    Status gen_status = generate();
    rows.clear();
    rows.shrink_to_fit();
    ctx_->budget().Release(run_charge);
    MPPDB_RETURN_IF_ERROR(gen_status);
  }
  stats.sort_runs += runs.size();

  // K-way merge, cascading when there are more runs than the fan-in so
  // read-back buffers stay bounded. Equal keys break toward the
  // lower-numbered (earlier-input) run at every level: a stable merge of
  // stable-sorted contiguous slices — exactly the oracle's global stable
  // sort. Each level's buffers are charged before use and released after.
  auto refill = [&](RunState& run) -> Status {
    if (run.eof || run.pos < run.buffer.size()) return Status::OK();
    run.buffer.clear();
    run.pos = 0;
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.read"));
    MPPDB_ASSIGN_OR_RETURN(size_t bytes, run.file->ReadBatch(&run.buffer));
    if (bytes == 0) {
      run.eof = true;
    } else {
      stats.spill_bytes_read += bytes;
    }
    return Status::OK();
  };
  // Merges runs[begin, end) in run order, streaming each merged row into
  // `sink`.
  auto merge_group = [&](size_t begin, size_t end,
                         const std::function<Status(Row)>& sink) -> Status {
    for (size_t r = begin; r < end; ++r) {
      MPPDB_RETURN_IF_ERROR(runs[r].file->Rewind());
      runs[r].buffer.clear();
      runs[r].pos = 0;
      runs[r].eof = false;
      MPPDB_RETURN_IF_ERROR(refill(runs[r]));
    }
    for (;;) {
      size_t best = end;
      for (size_t r = begin; r < end; ++r) {
        if (runs[r].eof) continue;
        if (best == end ||
            row_less(runs[r].buffer[runs[r].pos],
                     runs[best].buffer[runs[best].pos])) {
          best = r;
        }
      }
      if (best == end) return Status::OK();
      MPPDB_RETURN_IF_ERROR(
          sink(std::move(runs[best].buffer[runs[best].pos])));
      ++runs[best].pos;
      MPPDB_RETURN_IF_ERROR(refill(runs[best]));
    }
  };
  const size_t group_buffer_charge =
      (kMergeFanIn + 1) * frame_rows * per_row;
  while (runs.size() > kMergeFanIn) {
    ++stats.spill_passes;
    std::vector<RunState> next;
    for (size_t begin = 0; begin < runs.size(); begin += kMergeFanIn) {
      const size_t end = std::min(runs.size(), begin + kMergeFanIn);
      MPPDB_RETURN_IF_ERROR(ChargeBudget(segment, group_buffer_charge,
                                         "sort merge read buffers"));
      auto merge_to_file = [&]() -> Status {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.open"));
        MPPDB_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> file,
                               manager->Create());
        std::vector<Row> buffer;
        auto flush_merged = [&]() -> Status {
          if (buffer.empty()) return Status::OK();
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "spill.write"));
          MPPDB_ASSIGN_OR_RETURN(size_t bytes,
                                 file->WriteBatch(buffer, 0, buffer.size()));
          stats.spill_bytes_written += bytes;
          buffer.clear();
          return Status::OK();
        };
        MPPDB_RETURN_IF_ERROR(merge_group(begin, end, [&](Row row) -> Status {
          buffer.push_back(std::move(row));
          if (buffer.size() >= frame_rows) return flush_merged();
          return Status::OK();
        }));
        MPPDB_RETURN_IF_ERROR(flush_merged());
        RunState merged;
        merged.file = std::move(file);
        next.push_back(std::move(merged));
        return Status::OK();
      };
      Status merge_status = merge_to_file();
      ctx_->budget().Release(group_buffer_charge);
      MPPDB_RETURN_IF_ERROR(merge_status);
    }
    runs = std::move(next);
  }
  ++stats.spill_passes;
  const size_t final_buffer_charge = runs.size() * frame_rows * per_row;
  MPPDB_RETURN_IF_ERROR(
      ChargeBudget(segment, final_buffer_charge, "sort merge read buffers"));
  std::vector<Row> out;
  out.reserve(n);
  Status final_status = merge_group(0, runs.size(), [&](Row row) -> Status {
    out.push_back(std::move(row));
    return Status::OK();
  });
  ctx_->budget().Release(final_buffer_charge);
  MPPDB_RETURN_IF_ERROR(final_status);
  return out;
}

}  // namespace mppdb
