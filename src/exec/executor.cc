#include "exec/executor.h"

#include <algorithm>
#include <condition_variable>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "common/macros.h"
#include "exec/agg_state.h"
#include "exec/join_hash.h"
#include "expr/constraint_derivation.h"
#include "expr/vector_eval.h"
#include "runtime/partition_functions.h"
#include "runtime/spill/row_codec.h"
#include "runtime/spill/spill_file.h"

namespace mppdb {

size_t ExecStats::PartitionsScanned(Oid table_oid) const {
  auto it = partitions_scanned.find(table_oid);
  return it == partitions_scanned.end() ? 0 : it->second.size();
}

size_t ExecStats::TotalPartitionsScanned() const {
  size_t total = 0;
  for (const auto& [table, parts] : partitions_scanned) total += parts.size();
  return total;
}

void ExecStats::MergeFrom(const ExecStats& other) {
  for (const auto& [table, parts] : other.partitions_scanned) {
    partitions_scanned[table].insert(parts.begin(), parts.end());
  }
  tuples_scanned += other.tuples_scanned;
  rows_moved += other.rows_moved;
  chunks_total += other.chunks_total;
  chunks_skipped += other.chunks_skipped;
  units_skipped += other.units_skipped;
  joinfilter_built += other.joinfilter_built;
  joinfilter_probed += other.joinfilter_probed;
  joinfilter_rows_rejected += other.joinfilter_rows_rejected;
  joinfilter_chunks_skipped += other.joinfilter_chunks_skipped;
  joinfilter_motion_rows_saved += other.joinfilter_motion_rows_saved;
  joinfilter_shed += other.joinfilter_shed;
  synopsis_rebuilds_shed += other.synopsis_rebuilds_shed;
  chunks_encoded_eval += other.chunks_encoded_eval;
  rows_late_materialized += other.rows_late_materialized;
  encoded_bytes_scanned += other.encoded_bytes_scanned;
  colstore_rebuilds_shed += other.colstore_rebuilds_shed;
  motion_rows_encoded += other.motion_rows_encoded;
  motion_bytes_saved += other.motion_bytes_saved;
  index_seeks += other.index_seeks;
  index_rows_read += other.index_rows_read;
  topn_rows_cut += other.topn_rows_cut;
  spill_partitions += other.spill_partitions;
  spill_bytes_written += other.spill_bytes_written;
  spill_bytes_read += other.spill_bytes_read;
  spill_passes += other.spill_passes;
  sort_runs += other.sort_runs;
}

struct Executor::MotionExchange {
  std::mutex mu;
  /// Count of segments that have deposited their source rows (parallel
  /// mode). Arrival is this counter, not a set of blocked threads: the last
  /// arriver builds the buffers and reschedules the `waiters` below.
  int arrived = 0;
  /// Per-segment deposited flags (parallel mode): a resumed segment's
  /// re-walk must read its Motion's buffer instead of re-executing the
  /// Motion's child (whose results were already deposited and routed).
  std::vector<char> deposited;
  /// Segments suspended at this exchange, awaiting the build. Resumed
  /// (resubmitted as scheduler tasks) by the last arriver, or by SignalAbort
  /// so they observe the abort instead of waiting forever.
  std::vector<int> waiters;
  /// Set exactly once, after the buffers/`build_status` are final.
  bool built = false;
  Status build_status;
  /// True when registered lazily for a shared Motion subtree (serial-only):
  /// each segment may read its buffer more than once, so reads must copy
  /// instead of moving out.
  bool lazily_registered = false;
  /// Per-source-segment child output, awaiting the exchange.
  std::vector<std::vector<Row>> source_rows;
  /// Per-destination-segment buffers (gather/redistribute); each slot is
  /// read by exactly one segment once `built`, so reads move out of it.
  std::vector<std::vector<Row>> buffers;
  /// Broadcast motions materialize the batch here once and every
  /// destination copies from it, instead of filling S identical buffers.
  std::vector<Row> broadcast_shared;
  /// Dictionary-coded wire form of the corresponding buffers slot / the
  /// broadcast batch (Options::encoded_motion). When set, the row form above
  /// is empty and readers decode at the receiving edge. Written only by the
  /// builder before `built` is announced, read-only afterwards — the same
  /// publication contract that makes the row buffers parallel-safe.
  std::vector<std::optional<EncodedRowBatch>> encoded_buffers;
  std::optional<EncodedRowBatch> encoded_broadcast;
};

namespace {

/// Error returned by workers woken from a Motion barrier by the abort flag;
/// Execute prefers reporting the originating failure over this one, and
/// rewrites an all-secondhand outcome (abort raised by a cancel callback,
/// not by any worker) to the context's own kCancelled/kDeadlineExceeded.
Status AbortedStatus() {
  return Status::Cancelled("execution aborted: a peer segment failed");
}

bool IsAbortedStatus(const Status& status) {
  return status.code() == StatusCode::kCancelled &&
         status.message().rfind("execution aborted:", 0) == 0;
}

}  // namespace

// The suspension sentinel: a segment task that reaches a Motion whose peers
// have not all arrived unwinds its stack by returning this through the
// ordinary error plumbing (every operator already propagates non-OK
// statuses), after registering itself as a waiter on the exchange. It never
// escapes RunSegmentTask, which translates it into "continuation pending".
Status SuspendedStatus() {
  return Status::Internal("suspended at motion rendezvous");
}

bool IsSuspendedStatus(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message() == "suspended at motion rendezvous";
}

/// Completion state of one parallel run. Lives on ExecuteParallel's frame;
/// segment tasks record their verdicts here and the Execute thread sleeps
/// until all have. This is the only blocking wait in parallel mode.
struct Executor::ParallelRun {
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<Result<std::vector<Row>>> seg_results;
};

Executor::Executor(const Catalog* catalog, StorageEngine* storage)
    : Executor(catalog, storage, Options()) {}

Executor::Executor(const Catalog* catalog, StorageEngine* storage, Options options)
    : catalog_(catalog),
      storage_(storage),
      num_segments_(storage->num_segments()),
      options_(options),
      hub_(storage->num_segments()) {}

Executor::~Executor() = default;

bool Executor::CollectMotions(const PhysPtr& node) {
  if (node->kind() == PhysNodeKind::kMotion) {
    auto exchange = std::make_unique<MotionExchange>();
    exchange->source_rows.resize(static_cast<size_t>(num_segments_));
    exchange->deposited.assign(static_cast<size_t>(num_segments_), 0);
    if (!exchanges_.emplace(node.get(), std::move(exchange)).second) {
      return false;  // shared Motion subtree: once-semantics need the lazy path
    }
  }
  for (const auto& child : node->children()) {
    if (!CollectMotions(child)) return false;
  }
  return true;
}

void Executor::SignalAbort() {
  abort_flag_.store(true, std::memory_order_release);
  // exchanges_mu_ keeps this iteration safe against a serial run's lazy
  // exchange registration when a cancel thread calls in concurrently.
  std::lock_guard<std::mutex> exchanges_lock(exchanges_mu_);
  for (auto& [node, exchange] : exchanges_) {
    // Reschedule every continuation suspended at this exchange. The flag is
    // set before the drain, and a suspending segment re-checks it under the
    // exchange lock before registering, so no waiter can slip in after the
    // drain and strand: it either lands in this swap or observes the flag
    // and fails on its own. Each resumed walk re-checks at its Motion and
    // records the abort verdict.
    std::vector<int> waiters;
    {
      std::lock_guard<std::mutex> lock(exchange->mu);
      waiters.swap(exchange->waiters);
    }
    for (int waiter : waiters) {
      scheduler_->Submit([this, waiter]() { RunSegmentTask(waiter); });
    }
  }
}

Status Executor::CheckExec(int segment, const char* point) {
  MPPDB_RETURN_IF_ERROR(ctx_->CheckAlive());
  if (abort_flag_.load(std::memory_order_acquire)) return AbortedStatus();
  FaultInjector* injector = ctx_->fault_injector();
  if (point != nullptr && injector != nullptr) {
    return injector->Hit(point, segment, ctx_);
  }
  return Status::OK();
}

Status Executor::ChargeBudget(int segment, size_t bytes, const char* what) {
  FaultInjector* injector = ctx_->fault_injector();
  if (injector != nullptr) {
    MPPDB_RETURN_IF_ERROR(injector->Hit("alloc.budget", segment, ctx_));
  }
  if (ctx_->budget().TryCharge(bytes)) return Status::OK();
  return Status::ResourceExhausted(
      std::string("query memory budget exhausted charging ") + what + " (" +
      std::to_string(bytes) + " bytes, " + ctx_->budget().DebugString() + ")");
}

bool Executor::TryChargeOptional(size_t bytes) {
  return ctx_->budget().TryCharge(bytes);
}

Result<bool> Executor::TryChargeSpill(int segment, size_t bytes) {
  // Same fault point as ChargeBudget: an armed alloc.budget fault fires
  // whether or not the query would have spilled.
  FaultInjector* injector = ctx_->fault_injector();
  if (injector != nullptr) {
    MPPDB_RETURN_IF_ERROR(injector->Hit("alloc.budget", segment, ctx_));
  }
  return ctx_->budget().TryCharge(bytes);
}

Result<SpillFileManager*> Executor::EnsureSpillManager() {
  std::lock_guard<std::mutex> lock(spill_mu_);
  if (spill_files_ == nullptr) {
    spill_files_ = std::make_unique<SpillFileManager>(ctx_->spill_dir());
  }
  return spill_files_.get();
}

const SliceSynopsis* Executor::AcquireSynopsis(const TableStore& store,
                                               Oid unit_oid, int segment) {
  if (ctx_->budget().limited() && !store.SynopsisFresh(unit_oid, segment)) {
    // Stale synopsis: UnitSynopsis would rebuild it from the rows. Charge a
    // per-chunk-per-column scratch estimate; under pressure the rebuild is
    // shed (zone maps are advisory) rather than failing the query.
    const std::vector<Row>& rows = store.UnitRows(unit_oid, segment);
    const size_t width = rows.empty() ? 0 : rows[0].size();
    const size_t chunks =
        (rows.size() + TableStore::kChunkRows - 1) / TableStore::kChunkRows;
    if (!TryChargeOptional((chunks + 1) * width * 64)) {
      ++seg_stats_[static_cast<size_t>(segment)].synopsis_rebuilds_shed;
      return nullptr;
    }
  }
  return &store.UnitSynopsis(unit_oid, segment);
}

const SliceColumns* Executor::AcquireColumns(const TableStore& store,
                                             Oid unit_oid, int segment) {
  if (store.UnitOrientation(unit_oid) != StorageOrientation::kColumn) {
    return nullptr;
  }
  if (ctx_->budget().limited() && !store.ColumnsFresh(unit_oid, segment)) {
    // Stale image: UnitColumns would re-encode the slice. Charge roughly one
    // plain copy of the rows (encode scratch peaks near that); under
    // pressure the encode is shed — the encoded image is a fast path, the
    // row image stays authoritative.
    const std::vector<Row>& rows = store.UnitRows(unit_oid, segment);
    const size_t width = rows.empty() ? 0 : rows[0].size();
    if (!TryChargeOptional(ApproxRowsBytes(rows.size(), width))) {
      ++seg_stats_[static_cast<size_t>(segment)].colstore_rebuilds_shed;
      return nullptr;
    }
  }
  return store.UnitColumns(unit_oid, segment);
}

Result<std::vector<Row>> Executor::Execute(const PhysPtr& plan) {
  return Execute(plan, nullptr);
}

Result<std::vector<Row>> Executor::Execute(const PhysPtr& plan,
                                           QueryContext* ctx) {
  // A shared never-cancelled, unlimited default keeps the hot-path checks
  // unconditional (ctx_ is never null) without charging callers that want no
  // context. Intentionally leaked: execution may outlive static teardown
  // order in exotic embeddings.
  static QueryContext* const default_ctx = new QueryContext();
  ctx_ = ctx != nullptr ? ctx : default_ctx;
  ctx_->budget().ResetUsage();
  hub_.Reset();
  stats_ = ExecStats();
  seg_stats_.assign(static_cast<size_t>(num_segments_), ExecStats());
  {
    std::lock_guard<std::mutex> lock(exchanges_mu_);
    exchanges_.clear();
  }
  abort_flag_.store(false);
  // Serial only for plans with shared Motion subtrees (whose once-semantics
  // need the lazy exchange path). Any worker count runs any segment count:
  // Motion rendezvous is an arrival counter, not a set of blocked threads,
  // so there is no minimum pool size and no max_workers fallback.
  bool plan_is_tree = CollectMotions(plan);
  parallel_run_ = options_.parallel && plan_is_tree;
  seg_run_.assign(static_cast<size_t>(num_segments_), SegmentRunState());
  // Cancel() wakes every Motion barrier through the abort flag, so blocked
  // workers notice within one wake-up instead of one batch. Registered on
  // the caller's context only — nobody can cancel the default.
  uint64_t cancel_cb = 0;
  if (ctx != nullptr) {
    cancel_cb = ctx->AddCancelCallback([this] { SignalAbort(); });
  }
  Result<std::vector<Row>> result =
      parallel_run_ ? ExecuteParallel(plan) : ExecuteSerial(plan);
  if (ctx != nullptr) ctx->RemoveCancelCallback(cancel_cb);
  // An all-secondhand abort (every path woke via the flag, e.g. Cancel()
  // raised it) is reported as the context's own verdict.
  if (!result.ok() && IsAbortedStatus(result.status())) {
    Status alive = ctx_->CheckAlive();
    if (!alive.ok()) result = alive;
  }
  // Leave the executor clean and reusable whatever the outcome: per-run
  // scratch is dropped here (the idempotent teardown the query-level retry
  // loop relies on — hub channels, exchange buffers, and published join
  // filters never leak into the next attempt), and stats_ carries the run's
  // counters only if it succeeded.
  hub_.Reset();
  {
    std::lock_guard<std::mutex> lock(exchanges_mu_);
    exchanges_.clear();
  }
  parallel_run_ = false;
  seg_run_.clear();
  // Destroying the spill manager removes the per-query spill directory and
  // every file in it — the single reclamation point covering success,
  // cancellation, deadline expiry, injected faults, and the teardown between
  // retry attempts (a retry re-enters here and spills afresh).
  spill_files_.reset();
  if (result.ok()) {
    for (const ExecStats& seg : seg_stats_) stats_.MergeFrom(seg);
  }
  seg_stats_.clear();
  return result;
}

void Executor::SetScheduler(MorselScheduler* scheduler) {
  scheduler_ = scheduler;
}

int Executor::ResolveWorkerCount(int max_workers) {
  if (max_workers > 0) return max_workers;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

void Executor::EnsureScheduler() {
  if (scheduler_ != nullptr) return;
  if (owned_scheduler_ == nullptr) {
    owned_scheduler_ =
        std::make_unique<MorselScheduler>(ResolveWorkerCount(options_.max_workers));
  }
  scheduler_ = owned_scheduler_.get();
}

Result<std::vector<Row>> Executor::ExecuteSerial(const PhysPtr& plan) {
  // One thread owns every segment's channels for the whole run.
  for (int segment = 0; segment < num_segments_; ++segment) {
    hub_.BindOwner(segment);
  }
  std::vector<Row> result;
  for (int segment = 0; segment < num_segments_; ++segment) {
    MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(plan, segment));
    result.insert(result.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  return result;
}

Result<std::vector<Row>> Executor::ExecuteParallel(const PhysPtr& plan) {
  EnsureScheduler();
  ParallelRun run;
  run.seg_results.assign(
      static_cast<size_t>(num_segments_),
      Result<std::vector<Row>>(Status::Internal("segment slice did not run")));
  run_ = &run;
  current_plan_ = &plan;
  for (int segment = 0; segment < num_segments_; ++segment) {
    scheduler_->Submit([this, segment]() { RunSegmentTask(segment); });
  }
  {
    std::unique_lock<std::mutex> lock(run.mu);
    auto all_done = [this, &run]() { return run.done == num_segments_; };
    if (ctx_->has_deadline()) {
      // Deadline enforcement for segments suspended at a Motion whose peers
      // never arrive (stalled, or sleeping in an injected delay): raise the
      // abort, which reschedules every suspended continuation; each then
      // fails its liveness check — CheckAlive itself reports
      // kDeadlineExceeded past the deadline — and records a typed verdict,
      // so the unconditional wait below always terminates.
      if (!run.cv.wait_until(lock, ctx_->deadline(), all_done)) {
        lock.unlock();
        SignalAbort();
        lock.lock();
      }
    }
    run.cv.wait(lock, all_done);
  }
  run_ = nullptr;
  current_plan_ = nullptr;

  // Report the originating failure, not a barrier's secondhand abort.
  for (const auto& seg_result : run.seg_results) {
    if (!seg_result.ok() && !IsAbortedStatus(seg_result.status())) {
      return seg_result.status();
    }
  }
  std::vector<Row> result;
  size_t total_rows = 0;
  for (const auto& seg_result : run.seg_results) {
    if (seg_result.ok()) total_rows += seg_result.value().size();
  }
  result.reserve(total_rows);
  for (auto& seg_result : run.seg_results) {
    if (!seg_result.ok()) return seg_result.status();
    std::vector<Row> rows = std::move(seg_result).value();
    result.insert(result.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  return result;
}

void Executor::RunSegmentTask(int segment) {
  // A segment's tasks form a chain — initial task, then one continuation per
  // Motion suspension — with a happens-before edge through the exchange (or
  // scheduler) mutex at every hop, so re-binding the hub owner here keeps
  // the single-owner contract even though hops may land on different
  // workers.
  hub_.BindOwner(segment);
  // Task-body liveness gate: a query cancelled (or aborted by a peer) while
  // this task sat queued never starts executing.
  Status alive = CheckExec(segment, nullptr);
  Result<std::vector<Row>> rows = alive.ok()
                                      ? ExecNode(*current_plan_, segment)
                                      : Result<std::vector<Row>>(alive);
  if (!rows.ok() && IsSuspendedStatus(rows.status())) {
    return;  // continuation registered at a Motion exchange; no verdict yet
  }
  if (!rows.ok()) SignalAbort();
  ParallelRun* run = run_;
  // Notify under the lock: once done hits S the Execute thread may wake and
  // destroy `run`, so the cv must not be touched after the unlock.
  std::lock_guard<std::mutex> lock(run->mu);
  run->seg_results[static_cast<size_t>(segment)] = std::move(rows);
  if (++run->done == num_segments_) run->cv.notify_all();
}

Result<std::vector<Row>> Executor::ExecNode(const PhysPtr& node, int segment) {
  if (parallel_run_) {
    // Suspension memo: a re-walk after a Motion suspension must not repeat
    // subtrees that already completed. Entries are consumed on use and
    // re-created on the next unwind, so the memo is empty whenever the
    // segment is not between an unwind and its re-walk — which also keeps
    // legitimately shared non-Motion subtrees correct (their repeat visits
    // find no entry).
    SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
    if (memo.done.erase(node.get()) > 0) return std::vector<Row>{};
    auto cached = memo.cache.find(node.get());
    if (cached != memo.cache.end()) {
      std::vector<Row> rows = std::move(cached->second);
      memo.cache.erase(cached);
      return rows;
    }
  }
  // Per-operator liveness check; the hot loops below add per-batch checks.
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
  switch (node->kind()) {
    case PhysNodeKind::kTableScan:
      return ExecTableScan(static_cast<const TableScanNode&>(*node), segment);
    case PhysNodeKind::kCheckedPartScan:
      return ExecCheckedPartScan(static_cast<const CheckedPartScanNode&>(*node),
                                 segment);
    case PhysNodeKind::kDynamicScan:
      return ExecDynamicScan(static_cast<const DynamicScanNode&>(*node), segment);
    case PhysNodeKind::kDynamicIndexScan:
      return ExecDynamicIndexScan(static_cast<const DynamicIndexScanNode&>(*node),
                                  segment);
    case PhysNodeKind::kPartitionSelector:
      return ExecPartitionSelector(static_cast<const PartitionSelectorNode&>(*node),
                                   segment);
    case PhysNodeKind::kSequence: {
      const auto& children = node->children();
      std::vector<Row> last;
      for (size_t i = 0; i < children.size(); ++i) {
        Result<std::vector<Row>> rows = ExecNode(children[i], segment);
        if (!rows.ok()) {
          if (parallel_run_ && IsSuspendedStatus(rows.status())) {
            // Earlier children completed and their outputs were discarded
            // (only the last child's output survives a Sequence); mark them
            // done so the re-walk skips their side-effecting subtrees.
            SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
            for (size_t j = 0; j < i; ++j) memo.done.insert(children[j].get());
          }
          return rows.status();
        }
        last = std::move(rows).value();
      }
      return last;
    }
    case PhysNodeKind::kAppend: {
      const auto& children = node->children();
      std::vector<std::vector<Row>> parts(children.size());
      for (size_t i = 0; i < children.size(); ++i) {
        Result<std::vector<Row>> rows = ExecNode(children[i], segment);
        if (!rows.ok()) {
          if (parallel_run_ && IsSuspendedStatus(rows.status())) {
            // Re-cache completed children for the re-walk to consume.
            SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
            for (size_t j = 0; j < i; ++j) {
              memo.cache[children[j].get()] = std::move(parts[j]);
            }
          }
          return rows.status();
        }
        parts[i] = std::move(rows).value();
      }
      std::vector<Row> out;
      size_t total = 0;
      for (const auto& part : parts) total += part.size();
      out.reserve(total);
      for (auto& part : parts) {
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    case PhysNodeKind::kFilter:
      if (options_.vectorized) {
        return ExecFilterVec(static_cast<const FilterNode&>(*node), segment);
      }
      return ExecFilter(static_cast<const FilterNode&>(*node), segment);
    case PhysNodeKind::kProject:
      if (options_.vectorized) {
        return ExecProjectVec(static_cast<const ProjectNode&>(*node), segment);
      }
      return ExecProject(static_cast<const ProjectNode&>(*node), segment);
    case PhysNodeKind::kHashJoin:
      if (options_.vectorized) {
        return ExecHashJoinVec(static_cast<const HashJoinNode&>(*node), segment);
      }
      return ExecHashJoin(static_cast<const HashJoinNode&>(*node), segment);
    case PhysNodeKind::kNestedLoopJoin:
      return ExecNestedLoopJoin(static_cast<const NestedLoopJoinNode&>(*node), segment);
    case PhysNodeKind::kIndexNLJoin:
      return ExecIndexNLJoin(static_cast<const IndexNLJoinNode&>(*node), segment);
    case PhysNodeKind::kHashAgg:
      if (options_.vectorized) {
        return ExecHashAggVec(static_cast<const HashAggNode&>(*node), segment);
      }
      return ExecHashAgg(static_cast<const HashAggNode&>(*node), segment);
    case PhysNodeKind::kSort:
      return ExecSort(static_cast<const SortNode&>(*node), segment);
    case PhysNodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(*node);
      MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(limit.child(0), segment));
      if (rows.size() > limit.limit()) rows.resize(limit.limit());
      return rows;
    }
    case PhysNodeKind::kTopN:
      return ExecTopN(static_cast<const TopNNode&>(*node), segment);
    case PhysNodeKind::kMotion:
      return ExecMotion(static_cast<const MotionNode&>(*node), segment);
    case PhysNodeKind::kValues: {
      const auto& values = static_cast<const ValuesNode&>(*node);
      if (segment != 0) return std::vector<Row>{};
      return values.rows();
    }
    case PhysNodeKind::kInsert:
      return ExecInsert(static_cast<const InsertNode&>(*node), segment);
    case PhysNodeKind::kUpdate:
      return ExecUpdate(static_cast<const UpdateNode&>(*node), segment);
    case PhysNodeKind::kDelete:
      return ExecDelete(static_cast<const DeleteNode&>(*node), segment);
  }
  return Status::Internal("unreachable physical node kind");
}

size_t Executor::MorselRows() const {
  const size_t rows =
      options_.morsel_rows == 0 ? 4 * TableStore::kChunkRows : options_.morsel_rows;
  // Chunk-aligned so zone-map chunk skipping never straddles a morsel.
  const size_t chunks =
      (rows + TableStore::kChunkRows - 1) / TableStore::kChunkRows;
  return chunks * TableStore::kChunkRows;
}

Status Executor::RunMorselScan(int segment, size_t row_count,
                               const MorselBody& body, std::vector<Row>* out) {
  const size_t morsel_rows = MorselRows();
  if (!parallel_run_ || !options_.morsels || scheduler_ == nullptr ||
      scheduler_->num_workers() <= 1 || row_count <= morsel_rows) {
    // Ineligible: run the body whole, against the segment accumulator — the
    // exact loop the serial oracle runs.
    return body(0, row_count, &seg_stats_[static_cast<size_t>(segment)], out);
  }
  // Determinism by construction: every morsel gets a pre-assigned slot, and
  // rows/stats/errors are combined in range order no matter which worker ran
  // which morsel when.
  const size_t num_morsels = (row_count + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<Row>> slot_rows(num_morsels);
  std::vector<ExecStats> slot_stats(num_morsels);
  std::vector<Status> slot_status(num_morsels, Status::OK());
  MorselScheduler::TaskGroup group(scheduler_);
  for (size_t m = 0; m < num_morsels; ++m) {
    const size_t begin = m * morsel_rows;
    const size_t end = std::min(row_count, begin + morsel_rows);
    group.Spawn([&body, &slot_rows, &slot_stats, &slot_status, m, begin, end]() {
      slot_status[m] = body(begin, end, &slot_stats[m], &slot_rows[m]);
    });
  }
  group.Wait();
  // Lowest failing range wins: the error the serial loop would hit first.
  for (const Status& status : slot_status) {
    MPPDB_RETURN_IF_ERROR(status);
  }
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  size_t total = 0;
  for (const auto& slot : slot_rows) total += slot.size();
  out->reserve(out->size() + total);
  for (size_t m = 0; m < num_morsels; ++m) {
    stats.MergeFrom(slot_stats[m]);
    out->insert(out->end(), std::make_move_iterator(slot_rows[m].begin()),
                std::make_move_iterator(slot_rows[m].end()));
  }
  return Status::OK();
}

Status Executor::ScanUnit(const TableStore& store, Oid table_oid, Oid unit_oid,
                          int segment, bool emit_rowids,
                          const std::vector<BoundJoinFilter>& join_filters,
                          std::vector<Row>* out) {
  const std::vector<Row>& rows = store.UnitRows(unit_oid, segment);
  ExecStats& seg_stats = seg_stats_[static_cast<size_t>(segment)];
  seg_stats.partitions_scanned[table_oid].insert(unit_oid);
  // Logical accounting: join-filter-rejected rows still count as scanned.
  seg_stats.tuples_scanned += rows.size();
  if (join_filters.empty()) {
    if (!emit_rowids) {
      auto body = [this, segment, &rows](size_t begin, size_t end, ExecStats*,
                                         std::vector<Row>* mout) -> Status {
        mout->reserve(mout->size() + (end - begin));
        for (size_t base = begin; base < end; base += TableStore::kChunkRows) {
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
          const size_t chunk_end = std::min(end, base + TableStore::kChunkRows);
          mout->insert(mout->end(),
                       rows.begin() + static_cast<std::ptrdiff_t>(base),
                       rows.begin() + static_cast<std::ptrdiff_t>(chunk_end));
        }
        return Status::OK();
      };
      return RunMorselScan(segment, rows.size(), body, out);
    }
    auto body = [this, segment, unit_oid, &rows](size_t begin, size_t end,
                                                 ExecStats*,
                                                 std::vector<Row>* mout) -> Status {
      mout->reserve(mout->size() + (end - begin));
      for (size_t i = begin; i < end; ++i) {
        if (i % TableStore::kChunkRows == 0) {
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
        }
        Row row = rows[i];
        row.push_back(Datum::Int64(unit_oid));
        row.push_back(Datum::Int64(segment));
        row.push_back(Datum::Int64(static_cast<int64_t>(i)));
        mout->push_back(std::move(row));
      }
      return Status::OK();
    };
    return RunMorselScan(segment, rows.size(), body, out);
  }
  // Join-filtered scan. Placement never annotates rowid-emitting scans
  // (those exist for DML plans, which get no placement pass at all).
  MPPDB_CHECK(!emit_rowids);
  if (rows.empty()) return Status::OK();
  // At a bare scan there is no predicate between storage and the consumer
  // site, so chunk-level skipping needs no error-safety gate: any dropped
  // row is provably outside the build keys' min/max and could never join.
  // The synopsis is acquired here, in the spawning task (its lazy rebuild is
  // owner-confined); morsel bodies only read it.
  const SliceSynopsis* synopsis =
      options_.data_skipping ? AcquireSynopsis(store, unit_oid, segment) : nullptr;
  auto body = [this, segment, &rows, &join_filters, synopsis](
                  size_t begin, size_t end, ExecStats* stats,
                  std::vector<Row>* mout) -> Status {
    for (size_t base = begin; base < end; base += TableStore::kChunkRows) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
      const size_t chunk_end = std::min(end, base + TableStore::kChunkRows);
      const BoundJoinFilter* chunk_skipper = nullptr;
      if (synopsis != nullptr) {
        const ChunkSynopsis& chunk = synopsis->chunks[base / TableStore::kChunkRows];
        for (const BoundJoinFilter& filter : join_filters) {
          if (filter.summary->ChunkProvablyDisjoint(chunk, filter.key_positions)) {
            chunk_skipper = &filter;
            break;
          }
        }
      }
      if (chunk_skipper != nullptr) {
        ++stats->joinfilter_chunks_skipped;
        if (chunk_skipper->below_motion) {
          // rows_moved stays logical: these rows would have reached the
          // Motion (nothing between a bare scan and its Motion drops rows).
          stats->rows_moved += chunk_end - base;
          stats->joinfilter_motion_rows_saved += chunk_end - base;
        }
        continue;
      }
      for (size_t i = base; i < chunk_end; ++i) {
        ++stats->joinfilter_probed;
        const BoundJoinFilter* rejecter = nullptr;
        for (const BoundJoinFilter& filter : join_filters) {
          if (!filter.summary->RowMayMatch(rows[i], filter.key_positions)) {
            rejecter = &filter;
            break;
          }
        }
        if (rejecter == nullptr) {
          mout->push_back(rows[i]);
          continue;
        }
        ++stats->joinfilter_rows_rejected;
        if (rejecter->below_motion) {
          ++stats->rows_moved;
          ++stats->joinfilter_motion_rows_saved;
        }
      }
    }
    return Status::OK();
  };
  return RunMorselScan(segment, rows.size(), body, out);
}

Result<std::vector<Executor::BoundJoinFilter>> Executor::BindJoinFilterProbes(
    const PhysicalNode& node, const ColumnLayout& layout, int segment) {
  std::vector<BoundJoinFilter> bound;
  if (!options_.join_filters || node.join_filters().probes.empty()) return bound;
  for (const JoinFilterProbe& probe : node.join_filters().probes) {
    const JoinFilterSummary* summary =
        probe.global ? hub_.FindGlobalJoinFilter(probe.filter_id)
                     : hub_.FindJoinFilter(segment, probe.filter_id);
    // The filter is advisory: an unpublished summary (publisher disabled or
    // never reached) just means no early rejection on this path.
    if (summary == nullptr) continue;
    MPPDB_ASSIGN_OR_RETURN(std::vector<int> positions,
                           ResolvePositions(layout, probe.key_columns));
    bound.push_back(BoundJoinFilter{summary, std::move(positions), probe.below_motion});
  }
  return bound;
}

Status Executor::PublishLocalJoinFilters(const PhysicalNode& node,
                                         const ColumnLayout& build_layout,
                                         const std::vector<Row>& build_rows,
                                         int segment) {
  if (!options_.join_filters) return Status::OK();
  for (const JoinFilterSpec& spec : node.join_filters().publishes) {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "joinfilter.publish"));
    MPPDB_ASSIGN_OR_RETURN(std::vector<int> positions,
                           ResolvePositions(build_layout, spec.key_columns));
    // Summaries are advisory: under budget pressure the publish is shed
    // (consumers tolerate a missing summary) instead of failing the query.
    const size_t summary_bytes = 64 + positions.size() * 48 + build_rows.size();
    if (!TryChargeOptional(summary_bytes)) {
      ++seg_stats_[static_cast<size_t>(segment)].joinfilter_shed;
      continue;
    }
    JoinFilterSummaryBuilder builder(positions.size(), build_rows.size());
    for (const Row& row : build_rows) builder.Add(row, positions);
    hub_.PublishJoinFilter(segment, spec.filter_id, builder.Finish());
    ++seg_stats_[static_cast<size_t>(segment)].joinfilter_built;
  }
  return Status::OK();
}

Result<std::vector<Row>> Executor::ExecTableScan(const TableScanNode& node,
                                                 int segment) {
  const TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  // Replicated base tables produce rows on one segment only (see header).
  if (store->descriptor().distribution == TableDistribution::kReplicated &&
      segment != 0) {
    return std::vector<Row>{};
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, node.OutputLayout(), segment));
  std::vector<Row> out;
  MPPDB_RETURN_IF_ERROR(ScanUnit(*store, node.table_oid(), node.unit_oid(), segment,
                                 !node.rowid_ids().empty(), join_filters, &out));
  return out;
}

Result<std::vector<Row>> Executor::ExecCheckedPartScan(const CheckedPartScanNode& node,
                                                       int segment) {
  const TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  if (!hub_.HasChannel(segment, node.scan_id())) {
    return Status::ExecutionError(
        "CheckedPartScan: no partition parameter for scan id " +
        std::to_string(node.scan_id()));
  }
  const std::vector<Oid>& selected = hub_.Selected(segment, node.scan_id());
  std::vector<Row> out;
  if (std::find(selected.begin(), selected.end(), node.leaf_oid()) != selected.end()) {
    MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                           BindJoinFilterProbes(node, node.OutputLayout(), segment));
    MPPDB_RETURN_IF_ERROR(ScanUnit(*store, node.table_oid(), node.leaf_oid(),
                                   segment, false, join_filters, &out));
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecDynamicScan(const DynamicScanNode& node,
                                                   int segment) {
  const TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  if (!hub_.HasChannel(segment, node.scan_id())) {
    return Status::ExecutionError(
        "DynamicScan executed before its PartitionSelector (scan id " +
        std::to_string(node.scan_id()) + ", segment " + std::to_string(segment) + ")");
  }
  if (store->descriptor().distribution == TableDistribution::kReplicated &&
      segment != 0) {
    return std::vector<Row>{};
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, node.OutputLayout(), segment));
  std::vector<Row> out;
  for (Oid oid : hub_.Selected(segment, node.scan_id())) {
    if (!store->HasUnit(oid)) {
      return Status::ExecutionError("selected partition oid " + std::to_string(oid) +
                                    " is not a leaf of table " +
                                    std::to_string(node.table_oid()));
    }
    MPPDB_RETURN_IF_ERROR(ScanUnit(*store, node.table_oid(), oid, segment,
                                   !node.rowid_ids().empty(), join_filters, &out));
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecDynamicIndexScan(
    const DynamicIndexScanNode& node, int segment) {
  TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  const TableDescriptor& table = store->descriptor();
  if (node.scan_id() >= 0 && !hub_.HasChannel(segment, node.scan_id())) {
    return Status::ExecutionError(
        "DynamicIndexScan executed before its PartitionSelector (scan id " +
        std::to_string(node.scan_id()) + ", segment " + std::to_string(segment) + ")");
  }
  if (table.distribution == TableDistribution::kReplicated && segment != 0) {
    return std::vector<Row>{};
  }
  if (!table.HasIndexOn(node.index_column())) {
    return Status::ExecutionError("DynamicIndexScan without an index on column " +
                                  std::to_string(node.index_column()) + " of " +
                                  table.name);
  }
  if (!store->HasIndex(node.index_column())) {
    MPPDB_RETURN_IF_ERROR(store->CreateIndex(node.index_column()));
  }

  std::vector<Oid> units;
  if (node.scan_id() >= 0) {
    for (Oid oid : hub_.Selected(segment, node.scan_id())) {
      if (!store->HasUnit(oid)) {
        return Status::ExecutionError("selected partition oid " + std::to_string(oid) +
                                      " is not a leaf of table " +
                                      std::to_string(node.table_oid()));
      }
      units.push_back(oid);
    }
  } else {
    units = store->UnitOids();
  }

  ColumnLayout layout = node.OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, layout, segment));
  // Residual kernel compiled once per operator (vectorized path); each morsel
  // body owns its evaluation scratch (KernelContext is not thread-safe).
  std::optional<KernelProgram> residual_kernel;
  if (options_.vectorized && node.residual() != nullptr) {
    residual_kernel = KernelProgram::Compile(node.residual(), layout);
  }

  const Oid table_oid = node.table_oid();
  // Unit-granular morsels: the surviving-unit list splits across the morsel
  // scheduler exactly like a scan's row ranges; range-order output slots and
  // range-order stats merging keep the result bit-identical to a serial loop.
  auto body = [&, this](size_t begin, size_t end, ExecStats* stats,
                        std::vector<Row>* mout) -> Status {
    KernelContext kctx;
    SelVec sel, survivors;
    for (size_t u = begin; u < end; ++u) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "storage.scan_chunk"));
      const Oid unit = units[u];
      const std::vector<Row>& rows = store->UnitRows(unit, segment);
      stats->partitions_scanned[table_oid].insert(unit);
      // Logical accounting: the slice counts as scanned even though the index
      // reads back only a fraction of it; only index_* counters reveal the
      // access path.
      stats->tuples_scanned += rows.size();
      ++stats->index_seeks;
      std::vector<size_t> positions;
      switch (node.mode()) {
        case IndexScanMode::kRangeSeek:
          positions = store->IndexRangeSeek(unit, segment, node.index_column(),
                                            node.lo(), node.hi());
          break;
        case IndexScanMode::kOrderedWalk:
          positions = store->IndexOrderedWalk(unit, segment, node.index_column(),
                                              node.ascending(), node.per_unit_limit());
          break;
        case IndexScanMode::kMinMax: {
          std::optional<size_t> pos =
              store->IndexMinMax(unit, segment, node.index_column(), node.ascending());
          if (pos.has_value()) positions.push_back(*pos);
          break;
        }
      }
      stats->index_rows_read += positions.size();
      if (positions.empty()) continue;
      std::vector<Row> candidates;
      candidates.reserve(positions.size());
      for (size_t pos : positions) candidates.push_back(rows[pos]);
      // Survivors of the full residual, in candidate order. Evaluating the
      // whole original predicate (not just the non-sargable remainder) keeps
      // rows and error behavior identical to Filter over the scan.
      SelVec keep;
      if (node.residual() == nullptr) {
        keep.resize(candidates.size());
        for (size_t i = 0; i < keep.size(); ++i) keep[i] = static_cast<uint32_t>(i);
      } else if (residual_kernel.has_value()) {
        if (kctx.chunk_capacity() == 0) {
          kctx.Prepare(*residual_kernel, KernelContext::kDefaultChunkRows);
        }
        for (size_t base = 0; base < candidates.size();
             base += kctx.chunk_capacity()) {
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
          const size_t chunk_end =
              std::min(candidates.size(), base + kctx.chunk_capacity());
          sel.clear();
          for (size_t i = base; i < chunk_end; ++i) {
            sel.push_back(static_cast<uint32_t>(i));
          }
          MPPDB_RETURN_IF_ERROR(EvalPredicateBatch(*residual_kernel, &kctx,
                                                   candidates, base, sel, &survivors));
          keep.insert(keep.end(), survivors.begin(), survivors.end());
        }
      } else {
        size_t until_check = 0;
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (until_check == 0) {
            MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
            until_check = TableStore::kChunkRows;
          }
          --until_check;
          MPPDB_ASSIGN_OR_RETURN(
              bool pass, EvalPredicate(node.residual(), layout, candidates[i]));
          if (pass) keep.push_back(static_cast<uint32_t>(i));
        }
      }
      // Join filters apply after the full residual (the Filter consumer
      // contract), so only rows the replaced plan would emit are probed.
      for (uint32_t i : keep) {
        Row& row = candidates[i];
        const BoundJoinFilter* rejecter = nullptr;
        if (!join_filters.empty()) {
          ++stats->joinfilter_probed;
          for (const BoundJoinFilter& filter : join_filters) {
            if (!filter.summary->RowMayMatch(row, filter.key_positions)) {
              rejecter = &filter;
              break;
            }
          }
        }
        if (rejecter == nullptr) {
          mout->push_back(std::move(row));
          continue;
        }
        ++stats->joinfilter_rows_rejected;
        if (rejecter->below_motion) {
          ++stats->rows_moved;
          ++stats->joinfilter_motion_rows_saved;
        }
      }
    }
    return Status::OK();
  };
  std::vector<Row> out;
  MPPDB_RETURN_IF_ERROR(RunMorselScan(segment, units.size(), body, &out));
  return out;
}

Result<std::vector<Row>> Executor::ExecPartitionSelector(
    const PartitionSelectorNode& node, int segment) {
  const TableDescriptor* table = catalog_->FindTable(node.table_oid());
  if (table == nullptr || !table->IsPartitioned()) {
    return Status::ExecutionError("PartitionSelector on non-partitioned table oid " +
                                  std::to_string(node.table_oid()));
  }
  const PartitionScheme& scheme = *table->partition_scheme;
  const size_t num_levels = scheme.num_levels();
  MPPDB_CHECK(node.level_keys().size() == num_levels);
  MPPDB_CHECK(node.level_predicates().size() == num_levels);

  hub_.OpenChannel(segment, node.scan_id());
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, "hub.push"));

  auto select_with = [&](const std::vector<ExprPtr>& preds) {
    std::vector<ConstraintSet> constraints;
    constraints.reserve(num_levels);
    for (size_t level = 0; level < num_levels; ++level) {
      if (preds[level] == nullptr) {
        constraints.push_back(ConstraintSet::All());
      } else {
        constraints.push_back(
            DeriveConstraint(preds[level], node.level_keys()[level]));
      }
    }
    for (Oid oid : scheme.SelectPartitions(constraints)) {
      hub_.Push(segment, node.scan_id(), oid);
    }
  };

  if (!node.HasChild()) {
    // Static selection: predicates reference only the partition key and
    // constants; one selection run covers the whole scan.
    select_with(node.level_predicates());
    return std::vector<Row>{};
  }

  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();

  // Predicates that reference no child column are row-invariant; evaluate
  // once instead of per tuple.
  bool row_dependent = false;
  for (const auto& pred : node.level_predicates()) {
    if (pred == nullptr) continue;
    std::unordered_set<ColRefId> refs;
    CollectColumnRefs(pred, &refs);
    for (ColRefId id : refs) {
      if (layout.PositionOf(id) >= 0) {
        row_dependent = true;
        break;
      }
    }
    if (row_dependent) break;
  }

  if (!row_dependent) {
    select_with(node.level_predicates());
    return rows;
  }

  // Fast path (paper Fig. 15(a)): when every level's predicate is
  // `partition_key = <column of the input row>`, each tuple routes directly
  // through the partition_selection built-in instead of the generic
  // constraint machinery.
  std::vector<int> eq_positions(num_levels, -1);
  bool all_equality = true;
  for (size_t level = 0; level < num_levels && all_equality; ++level) {
    const ExprPtr& pred = node.level_predicates()[level];
    if (pred == nullptr || pred->kind() != ExprKind::kComparison) {
      all_equality = false;
      break;
    }
    const auto& cmp = static_cast<const ComparisonExpr&>(*pred);
    if (cmp.op() != CompareOp::kEq) {
      all_equality = false;
      break;
    }
    ExprPtr other;
    if (cmp.child(0)->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(*cmp.child(0)).id() ==
            node.level_keys()[level]) {
      other = cmp.child(1);
    } else if (cmp.child(1)->kind() == ExprKind::kColumnRef &&
               static_cast<const ColumnRefExpr&>(*cmp.child(1)).id() ==
                   node.level_keys()[level]) {
      other = cmp.child(0);
    }
    if (other == nullptr || other->kind() != ExprKind::kColumnRef) {
      all_equality = false;
      break;
    }
    int pos = layout.PositionOf(static_cast<const ColumnRefExpr&>(*other).id());
    if (pos < 0) {
      all_equality = false;
      break;
    }
    eq_positions[level] = pos;
  }
  if (all_equality) {
    std::vector<Datum> key_values(num_levels);
    size_t until_check = 0;
    for (const Row& row : rows) {
      if (until_check == 0) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "hub.push"));
        until_check = TableStore::kChunkRows;
      }
      --until_check;
      for (size_t level = 0; level < num_levels; ++level) {
        key_values[level] = row[static_cast<size_t>(eq_positions[level])];
      }
      Result<Oid> oid = partition_functions::PartitionSelection(
          *catalog_, node.table_oid(), key_values);
      MPPDB_CHECK(oid.ok());
      if (*oid != kInvalidOid) {
        partition_functions::PartitionPropagation(&hub_, segment, node.scan_id(),
                                                  *oid);
      }
    }
    return rows;
  }

  size_t until_check = 0;
  for (const Row& row : rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "hub.push"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    std::unordered_map<ColRefId, Datum> bindings;
    for (size_t i = 0; i < layout.ids().size(); ++i) {
      bindings.emplace(layout.ids()[i], row[i]);
    }
    // The partition key itself must stay symbolic: it names the scanned
    // table's column, not a value from this (outer) row.
    for (ColRefId key : node.level_keys()) bindings.erase(key);
    std::vector<ExprPtr> bound;
    bound.reserve(num_levels);
    for (const auto& pred : node.level_predicates()) {
      bound.push_back(pred == nullptr ? nullptr : SubstituteColumns(pred, bindings));
    }
    select_with(bound);
  }
  return rows;
}

Result<std::vector<Row>> Executor::ExecFilter(const FilterNode& node, int segment) {
  if (options_.data_skipping || options_.encoded_eval) {
    // Filters directly over scan fragments take the skipping path whenever
    // skipping is on — even if the predicate turns out non-sargable — so the
    // chunks_* accounting matches the vectorized fused path exactly. The
    // encoded-eval path lives on the same chunk loop (it needs the storage
    // chunk grid), so it routes here too; ExecFilterRowSkip gates all
    // synopsis work on data_skipping internally.
    ScanFragment frag;
    if (MatchScanFragment(node.child(0), &frag)) {
      return ExecFilterRowSkip(node, frag, segment);
    }
  }
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<BoundJoinFilter> join_filters,
                         BindJoinFilterProbes(node, layout, segment));
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  std::vector<Row> out;
  out.reserve(rows.size());
  size_t until_check = 0;
  for (Row& row : rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    MPPDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(node.predicate(), layout, row));
    if (!keep) continue;
    // Join filters apply after the full predicate, so only rows the filter
    // would have emitted anyway are probed (identical error behavior).
    const BoundJoinFilter* rejecter = nullptr;
    if (!join_filters.empty()) {
      ++stats.joinfilter_probed;
      for (const BoundJoinFilter& filter : join_filters) {
        if (!filter.summary->RowMayMatch(row, filter.key_positions)) {
          rejecter = &filter;
          break;
        }
      }
    }
    if (rejecter == nullptr) {
      out.push_back(std::move(row));
      continue;
    }
    ++stats.joinfilter_rows_rejected;
    if (rejecter->below_motion) {
      ++stats.rows_moved;
      ++stats.joinfilter_motion_rows_saved;
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecProject(const ProjectNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  std::vector<Row> out;
  out.reserve(rows.size());
  size_t until_check = 0;
  for (const Row& row : rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    Row projected;
    projected.reserve(node.items().size());
    for (const auto& item : node.items()) {
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(item.expr, layout, row));
      projected.push_back(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecHashJoin(const HashJoinNode& node, int segment) {
  // children[0] (build) runs to completion first — the property
  // PartitionSelector placement relies on.
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> build_rows, ExecNode(node.child(0), segment));
  ColumnLayout build_layout = node.child(0)->OutputLayout();
  // One-shot effects, skipped when a probe-side Motion suspension already
  // performed them on an earlier walk (the hub rejects a second publication
  // of the same filter id, and the budget must not be charged twice).
  const bool effects_pending =
      !parallel_run_ ||
      seg_run_[static_cast<size_t>(segment)].effects_done.erase(&node) == 0;
  if (effects_pending) {
    // The build table pins every build row plus hash-table nodes for the
    // whole probe phase: the query's dominant mandatory allocation. Charged
    // before the advisory filter publication so that under budget pressure
    // the optional summary sheds while the mandatory table still fits.
    // String payloads count (RowsPayloadBytes), so wide-varchar builds
    // don't undercharge and defeat the spill trigger.
    const size_t build_bytes =
        ApproxRowsBytes(build_rows.size(), build_layout.ids().size()) +
        RowsPayloadBytes(build_rows);
    if (options_.spill) {
      // A refusal is the spill trigger, not a failure. The decision lands in
      // the segment memo (not a local) because the probe child may suspend
      // at a Motion and unwind this frame; it is consumed after the probe
      // child completes.
      MPPDB_ASSIGN_OR_RETURN(bool charged, TryChargeSpill(segment, build_bytes));
      if (!charged) {
        seg_run_[static_cast<size_t>(segment)].spill_decided.insert(&node);
      }
    } else {
      MPPDB_RETURN_IF_ERROR(
          ChargeBudget(segment, build_bytes, "hash join build table"));
    }
    // This segment's build-key summary goes out before the probe child runs,
    // so probe-side consumers (same segment, same slice chain) can find it.
    // Published when spilling too: filters are advisory (their own charges
    // shed under pressure) and only ever reject non-joining probe rows.
    MPPDB_RETURN_IF_ERROR(
        PublishLocalJoinFilters(node, build_layout, build_rows, segment));
  }
  Result<std::vector<Row>> probe_result = ExecNode(node.child(1), segment);
  if (!probe_result.ok()) {
    if (parallel_run_ && IsSuspendedStatus(probe_result.status())) {
      SegmentRunState& memo = seg_run_[static_cast<size_t>(segment)];
      memo.cache[node.child(0).get()] = std::move(build_rows);
      memo.effects_done.insert(&node);
    }
    return probe_result.status();
  }
  std::vector<Row> probe_rows = std::move(probe_result).value();

  ColumnLayout probe_layout = node.child(1)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> build_pos,
                         ResolvePositions(build_layout, node.build_keys()));
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> probe_pos,
                         ResolvePositions(probe_layout, node.probe_keys()));

  if (seg_run_[static_cast<size_t>(segment)].spill_decided.erase(&node) > 0) {
    return SpillHashJoin(node, segment, std::move(build_rows),
                         std::move(probe_rows), build_layout, probe_layout,
                         build_pos, probe_pos);
  }

  std::unordered_multimap<JoinKey, const Row*, JoinKeyHash> table;
  table.reserve(build_rows.size());
  for (const Row& row : build_rows) {
    JoinKey key = ExtractKey(row, build_pos);
    if (key.HasNull()) continue;  // NULL keys never join
    table.emplace(std::move(key), &row);
  }

  ColumnLayout joint_layout = ColumnLayout::Concat(build_layout, probe_layout);
  std::vector<Row> out;
  out.reserve(probe_rows.size());
  size_t until_check = 0;
  for (const Row& probe : probe_rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    JoinKey key = ExtractKey(probe, probe_pos);
    if (key.HasNull()) continue;
    auto [begin, end] = table.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      Row joined = *it->second;
      joined.insert(joined.end(), probe.begin(), probe.end());
      if (node.residual() != nullptr) {
        MPPDB_ASSIGN_OR_RETURN(bool keep,
                               EvalPredicate(node.residual(), joint_layout, joined));
        if (!keep) continue;
      }
      if (node.join_type() == JoinType::kSemi) {
        out.push_back(probe);
        break;  // one match is enough for semi join
      }
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecNestedLoopJoin(const NestedLoopJoinNode& node,
                                                      int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> outer_rows, ExecNode(node.child(0), segment));
  Result<std::vector<Row>> inner_result = ExecNode(node.child(1), segment);
  if (!inner_result.ok()) {
    if (parallel_run_ && IsSuspendedStatus(inner_result.status())) {
      seg_run_[static_cast<size_t>(segment)].cache[node.child(0).get()] =
          std::move(outer_rows);
    }
    return inner_result.status();
  }
  std::vector<Row> inner_rows = std::move(inner_result).value();
  // No pairs, no output — skip the O(n*m) loop entirely. The children have
  // already run (side effects and stats), and with zero pairs the row path
  // never evaluates the predicate either, so this is behavior-preserving.
  if (outer_rows.empty() || inner_rows.empty()) return std::vector<Row>{};

  // Hoist constant-foldable conjuncts out of the per-pair loop. A conjunct
  // folding to TRUE never changes the conjunction's value and cannot error,
  // so it is dropped. One folding to FALSE empties the result — but only
  // when every earlier conjunct was dropped: AND evaluates left to right and
  // short-circuits on the first false, so with const-true conjuncts before
  // it no pair can reach (and error in) a later conjunct. A NULL constant
  // does not short-circuit AND evaluation and is kept as-is.
  ExprPtr predicate = node.predicate();
  if (predicate != nullptr) {
    std::vector<ExprPtr> kept;
    for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
      std::optional<Datum> folded = TryFoldConst(conjunct);
      if (folded.has_value() && !folded->is_null() &&
          folded->type() == TypeId::kBool) {
        if (folded->bool_value()) continue;  // drop const TRUE
        if (kept.empty()) return std::vector<Row>{};  // leading const FALSE
      }
      kept.push_back(conjunct);
    }
    predicate = Conj(std::move(kept));
  }

  ColumnLayout joint_layout = ColumnLayout::Concat(node.child(0)->OutputLayout(),
                                                   node.child(1)->OutputLayout());
  std::vector<Row> out;
  // Pair-granular countdown: O(n*m) loops must observe cancellation within
  // one batch of pairs, not one batch of outer rows.
  size_t until_check = 0;
  if (node.join_type() == JoinType::kSemi) {
    for (const Row& inner : inner_rows) {
      for (const Row& outer : outer_rows) {
        if (until_check == 0) {
          MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
          until_check = TableStore::kChunkRows;
        }
        --until_check;
        Row joined = outer;
        joined.insert(joined.end(), inner.begin(), inner.end());
        bool keep = true;
        if (predicate != nullptr) {
          MPPDB_ASSIGN_OR_RETURN(keep,
                                 EvalPredicate(predicate, joint_layout, joined));
        }
        if (keep) {
          out.push_back(inner);
          break;
        }
      }
    }
    return out;
  }
  out.reserve(outer_rows.size());
  for (const Row& outer : outer_rows) {
    for (const Row& inner : inner_rows) {
      if (until_check == 0) {
        MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
        until_check = TableStore::kChunkRows;
      }
      --until_check;
      Row joined = outer;
      joined.insert(joined.end(), inner.begin(), inner.end());
      bool keep = true;
      if (predicate != nullptr) {
        MPPDB_ASSIGN_OR_RETURN(keep,
                               EvalPredicate(predicate, joint_layout, joined));
      }
      if (keep) out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecIndexNLJoin(const IndexNLJoinNode& node,
                                                   int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> outer_rows, ExecNode(node.child(0), segment));
  TableStore* store = storage_->GetStore(node.inner_table());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.inner_table()));
  }
  const TableDescriptor& table = store->descriptor();
  if (table.distribution == TableDistribution::kReplicated) {
    return Status::ExecutionError(
        "IndexNLJoin over a replicated inner table would duplicate matches");
  }
  if (!table.HasIndexOn(node.inner_key_column())) {
    return Status::ExecutionError("IndexNLJoin without an index on column " +
                                  std::to_string(node.inner_key_column()) + " of " +
                                  table.name);
  }
  if (!store->HasIndex(node.inner_key_column())) {
    MPPDB_RETURN_IF_ERROR(store->CreateIndex(node.inner_key_column()));
  }
  const PartitionScheme* scheme =
      table.IsPartitioned() ? table.partition_scheme.get() : nullptr;
  if (scheme != nullptr && scheme->num_levels() != 1) {
    return Status::ExecutionError(
        "IndexNLJoin supports single-level partitioned inner tables");
  }

  ColumnLayout outer_layout = node.child(0)->OutputLayout();
  int key_pos = outer_layout.PositionOf(node.outer_key());
  if (key_pos < 0) {
    return Status::ExecutionError("IndexNLJoin outer key column not in outer layout");
  }
  ColumnLayout joint_layout =
      ColumnLayout::Concat(outer_layout, ColumnLayout(node.inner_column_ids()));

  std::vector<Row> out;
  size_t until_check = 0;
  for (const Row& outer : outer_rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    const Datum& key = outer[static_cast<size_t>(key_pos)];
    if (key.is_null()) continue;
    // The outer child computes "the keys of partitions to be scanned"
    // (paper 2.2): route through f_T to the single qualifying partition.
    Oid unit = table.oid;
    if (scheme != nullptr) {
      unit = scheme->RouteValues({key});
      if (unit == kInvalidOid) continue;  // the invalid partition: no match
    }
    ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
    stats.partitions_scanned[table.oid].insert(unit);
    const std::vector<size_t> positions =
        store->IndexLookup(unit, segment, node.inner_key_column(), key);
    stats.tuples_scanned += positions.size();
    if (positions.empty()) continue;
    const std::vector<Row>& unit_rows = store->UnitRows(unit, segment);
    for (size_t pos : positions) {
      Row joined = outer;
      const Row& inner = unit_rows[pos];
      joined.insert(joined.end(), inner.begin(), inner.end());
      if (node.residual() != nullptr) {
        MPPDB_ASSIGN_OR_RETURN(bool keep,
                               EvalPredicate(node.residual(), joint_layout, joined));
        if (!keep) continue;
      }
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecHashAgg(const HashAggNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> group_pos,
                         ResolvePositions(layout, node.group_by()));

  std::unordered_map<JoinKey, std::vector<AggState>, JoinKeyHash> groups;
  std::vector<JoinKey> group_order;

  // Grouping state grows with distinct keys, not input rows — charge it
  // incrementally as groups appear (the vectorized path mirrors this
  // formula exactly, keeping budget outcomes path-independent). String key
  // payloads count on top of the fixed per-group estimate.
  const size_t group_bytes =
      ApproxRowsBytes(1, group_pos.size() + node.aggs().size());
  size_t charged_bytes = 0;
  bool spill = false;
  size_t until_check = 0;
  for (const Row& row : rows) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    JoinKey key = ExtractKey(row, group_pos);
    auto it = groups.find(key);
    if (it == groups.end()) {
      const size_t this_group_bytes =
          group_bytes + RowPayloadBytes(key.values);
      if (options_.spill) {
        MPPDB_ASSIGN_OR_RETURN(bool charged,
                               TryChargeSpill(segment, this_group_bytes));
        if (!charged) {
          spill = true;
          break;
        }
      } else {
        MPPDB_RETURN_IF_ERROR(
            ChargeBudget(segment, this_group_bytes, "hash aggregate group"));
      }
      charged_bytes += this_group_bytes;
      it = groups.emplace(key, std::vector<AggState>(node.aggs().size())).first;
      group_order.push_back(key);
    }
    std::vector<AggState>& states = it->second;
    for (size_t i = 0; i < node.aggs().size(); ++i) {
      const AggItem& agg = node.aggs()[i];
      AggState& state = states[i];
      if (agg.func == AggFunc::kCountStar) {
        ++state.count;
        continue;
      }
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(agg.arg, layout, row));
      if (v.is_null()) continue;
      MPPDB_RETURN_IF_ERROR(AccumulateAgg(state, agg.func, v));
    }
  }

  if (spill) {
    // Hand the intact input to the out-of-core path, which re-aggregates
    // from scratch partition by partition; the charges accumulated so far
    // return to the pool (the spill path charges per partition instead).
    ctx_->budget().Release(charged_bytes);
    groups.clear();
    group_order.clear();
    return SpillHashAgg(node, segment, rows, layout, group_pos);
  }

  // Scalar aggregate over empty input still has one (empty-keyed) group —
  // emitted on segment 0 only (see header).
  if (node.group_by().empty() && group_order.empty() && segment == 0) {
    groups.emplace(JoinKey{}, std::vector<AggState>(node.aggs().size()));
    group_order.push_back(JoinKey{});
  }

  std::vector<Row> out;
  out.reserve(group_order.size());
  for (const JoinKey& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    Row row = key.values;
    for (size_t i = 0; i < node.aggs().size(); ++i) {
      row.push_back(FinalizeAgg(states[i], node.aggs()[i].func));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> Executor::ExecSort(const SortNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  std::vector<int> positions;
  std::vector<bool> ascending;
  for (const SortKey& key : node.keys()) {
    int pos = layout.PositionOf(key.column);
    if (pos < 0) {
      return Status::ExecutionError("sort column #" + std::to_string(key.column) +
                                    " not in child layout");
    }
    positions.push_back(pos);
    ascending.push_back(key.ascending);
  }
  // Gather the sort keys into one contiguous buffer up front — O(n) key
  // extractions instead of O(n log n) row indexing inside the comparator —
  // then stable-sort a permutation and move the rows into place. Stability
  // makes the permutation identical to sorting the rows directly.
  const size_t num_keys = positions.size();
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
  // Scoped charge: the key buffer and permutation live only for the sort.
  // String key payloads count, so varchar sort keys don't undercharge.
  size_t key_payload = 0;
  for (const Row& row : rows) {
    for (int pos : positions) {
      key_payload += DatumPayloadBytes(row[static_cast<size_t>(pos)]);
    }
  }
  const size_t sort_bytes = ApproxRowsBytes(rows.size(), num_keys) + key_payload;
  if (options_.spill) {
    MPPDB_ASSIGN_OR_RETURN(bool charged, TryChargeSpill(segment, sort_bytes));
    if (!charged) {
      return SpillSortRows(node, segment, std::move(rows), positions, ascending,
                           sort_bytes);
    }
  } else {
    MPPDB_RETURN_IF_ERROR(ChargeBudget(segment, sort_bytes, "sort key buffer"));
  }
  std::vector<Datum> keys;
  keys.reserve(rows.size() * num_keys);
  for (const Row& row : rows) {
    for (size_t i = 0; i < num_keys; ++i) {
      keys.push_back(row[static_cast<size_t>(positions[i])]);
    }
  }
  std::vector<uint32_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Datum* ka = keys.data() + a * num_keys;
    const Datum* kb = keys.data() + b * num_keys;
    for (size_t i = 0; i < num_keys; ++i) {
      int c = Datum::Compare(ka[i], kb[i]);
      if (c != 0) return ascending[i] ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows.size());
  for (uint32_t idx : order) sorted.push_back(std::move(rows[idx]));
  ctx_->budget().Release(sort_bytes);
  return sorted;
}

Result<std::vector<Row>> Executor::ExecTopN(const TopNNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  ColumnLayout layout = node.child(0)->OutputLayout();
  std::vector<int> positions;
  std::vector<bool> ascending;
  for (const SortKey& key : node.keys()) {
    int pos = layout.PositionOf(key.column);
    if (pos < 0) {
      return Status::ExecutionError("sort column #" + std::to_string(key.column) +
                                    " not in child layout");
    }
    positions.push_back(pos);
    ascending.push_back(key.ascending);
  }
  const size_t k = node.limit();
  ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
  if (k == 0 || rows.empty()) {
    stats.topn_rows_cut += rows.size();
    return std::vector<Row>{};
  }
  const size_t num_keys = positions.size();
  // Heap state is O(k) — the retained rows' keys plus an arrival stamp — the
  // whole point versus Sort's O(n) key buffer.
  const size_t retain = std::min(k, rows.size());
  const size_t heap_bytes = ApproxRowsBytes(retain, num_keys + 1);
  MPPDB_RETURN_IF_ERROR(ChargeBudget(segment, heap_bytes, "top-n heap"));

  struct Entry {
    std::vector<Datum> keys;
    size_t arrival;
    Row row;
  };
  // Strict weak "ranks before" in the stable sort order: keys first, arrival
  // order as the tie-break — so the retained set and its final ordering are
  // exactly the first k rows of a stable sort (≡ Limit over Sort).
  auto before = [&](const Entry& a, const Entry& b) {
    for (size_t i = 0; i < num_keys; ++i) {
      int c = Datum::Compare(a.keys[i], b.keys[i]);
      if (c != 0) return ascending[i] ? c < 0 : c > 0;
    }
    return a.arrival < b.arrival;
  };
  // Max-heap under `before`: front is the worst retained entry.
  std::vector<Entry> heap;
  heap.reserve(retain);
  size_t until_check = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (until_check == 0) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "exec.batch"));
      until_check = TableStore::kChunkRows;
    }
    --until_check;
    Entry e;
    e.keys.reserve(num_keys);
    for (size_t i = 0; i < num_keys; ++i) {
      e.keys.push_back(rows[r][static_cast<size_t>(positions[i])]);
    }
    e.arrival = r;
    if (heap.size() < k) {
      e.row = std::move(rows[r]);
      heap.push_back(std::move(e));
      std::push_heap(heap.begin(), heap.end(), before);
      continue;
    }
    // A later arrival that ties the worst retained entry on every key ranks
    // after it (stability), so only strictly-better rows displace.
    if (!before(e, heap.front())) continue;
    e.row = std::move(rows[r]);
    std::pop_heap(heap.begin(), heap.end(), before);
    heap.back() = std::move(e);
    std::push_heap(heap.begin(), heap.end(), before);
  }
  stats.topn_rows_cut += rows.size() - heap.size();
  std::sort(heap.begin(), heap.end(), before);
  std::vector<Row> out;
  out.reserve(heap.size());
  for (Entry& e : heap) out.push_back(std::move(e.row));
  ctx_->budget().Release(heap_bytes);
  return out;
}

Status Executor::BuildMotionBuffers(const MotionNode& node, int segment,
                                    std::vector<std::vector<Row>> source_rows,
                                    MotionExchange* exchange) {
  ColumnLayout layout = node.child(0)->OutputLayout();
  size_t total_rows = 0;
  for (const auto& rows : source_rows) total_rows += rows.size();

  // The exchange's receive buffers hold every in-flight row until the
  // destinations drain them: a mandatory charge, like a real interconnect's
  // receive-queue quota.
  MPPDB_RETURN_IF_ERROR(
      ChargeBudget(segment, ApproxRowsBytes(total_rows, layout.ids().size()),
                   "motion receive buffers"));

  // Cross-segment join-filter publication: the summary covers every source
  // segment's rows before they are routed, which is exactly the union of all
  // segments' post-exchange build tables — sound for consumers below a
  // probe-side Motion on any segment. Publishing here (before `built` is
  // announced) means every consuming slice, still blocked on or short of
  // this rendezvous, observes a complete summary.
  if (options_.join_filters) {
    for (const JoinFilterSpec& spec : node.join_filters().publishes) {
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "joinfilter.publish"));
      MPPDB_ASSIGN_OR_RETURN(std::vector<int> positions,
                             ResolvePositions(layout, spec.key_columns));
      // Advisory, like the segment-local summaries: shed under pressure.
      const size_t summary_bytes = 64 + positions.size() * 48 + total_rows;
      if (!TryChargeOptional(summary_bytes)) {
        ++seg_stats_[static_cast<size_t>(segment)].joinfilter_shed;
        continue;
      }
      JoinFilterSummaryBuilder builder(positions.size(), total_rows);
      size_t rows_since_check = 0;
      for (const auto& rows : source_rows) {
        for (const Row& row : rows) {
          if (++rows_since_check >= TableStore::kChunkRows) {
            rows_since_check = 0;
            MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
          }
          builder.Add(row, positions);
        }
      }
      hub_.PublishGlobalJoinFilter(spec.filter_id, builder.Finish());
      ++seg_stats_[static_cast<size_t>(segment)].joinfilter_built;
    }
  }

  std::vector<std::vector<Row>>& buffers = exchange->buffers;
  buffers.assign(static_cast<size_t>(num_segments_), {});
  std::vector<int> hash_pos;
  switch (node.motion_kind()) {
    case MotionKind::kGather:
      buffers[0].reserve(total_rows);
      break;
    case MotionKind::kBroadcast:
      // One shared materialization; destinations copy from it on read.
      exchange->broadcast_shared.reserve(total_rows);
      break;
    case MotionKind::kRedistribute: {
      MPPDB_ASSIGN_OR_RETURN(hash_pos, ResolvePositions(layout, node.hash_columns()));
      // Sender batch hint: destinations receive ~total/S rows each under a
      // uniform hash; reserve that plus slack to avoid most regrows.
      const size_t expected =
          total_rows / static_cast<size_t>(num_segments_);
      for (auto& buffer : buffers) buffer.reserve(expected + expected / 4 + 4);
      break;
    }
  }
  // Source-segment order keeps buffer contents identical to serial execution.
  // The routing loop is the longest uninterruptible stretch on the parallel
  // path (the last arriver routes every segment's rows while its peers wait
  // on the rendezvous), so it re-checks liveness at batch granularity like
  // the operator hot loops do.
  size_t rows_since_check = 0;
  for (auto& rows : source_rows) {
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
    switch (node.motion_kind()) {
      case MotionKind::kGather:
        buffers[0].insert(buffers[0].end(), std::make_move_iterator(rows.begin()),
                          std::make_move_iterator(rows.end()));
        break;
      case MotionKind::kBroadcast:
        exchange->broadcast_shared.insert(exchange->broadcast_shared.end(),
                                          std::make_move_iterator(rows.begin()),
                                          std::make_move_iterator(rows.end()));
        break;
      case MotionKind::kRedistribute:
        for (Row& row : rows) {
          if (++rows_since_check >= TableStore::kChunkRows) {
            rows_since_check = 0;
            MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
          }
          uint64_t h = HashRowColumns(row, hash_pos);
          buffers[h % static_cast<uint64_t>(num_segments_)].push_back(std::move(row));
        }
        break;
    }
  }
  // Wire-format encoding happens after routing so each destination's batch
  // is dictionary-coded independently (its value locality, its dictionary).
  // The receive-buffer charge above deliberately stays the plain-row
  // estimate: the budget models the logical exchange volume, encoded or not.
  if (options_.encoded_motion) {
    ExecStats& stats = seg_stats_[static_cast<size_t>(segment)];
    auto try_encode = [&stats](std::vector<Row>& rows,
                               std::optional<EncodedRowBatch>* slot) {
      std::optional<EncodedRowBatch> batch = TryEncodeMotionBatch(std::move(rows));
      if (!batch) return;  // rows untouched
      rows.clear();
      stats.motion_rows_encoded += batch->num_rows;
      stats.motion_bytes_saved += batch->plain_bytes - batch->encoded_bytes;
      *slot = std::move(batch);
    };
    if (node.motion_kind() == MotionKind::kBroadcast) {
      try_encode(exchange->broadcast_shared, &exchange->encoded_broadcast);
    } else {
      exchange->encoded_buffers.assign(buffers.size(), std::nullopt);
      for (size_t dest = 0; dest < buffers.size(); ++dest) {
        try_encode(buffers[dest], &exchange->encoded_buffers[dest]);
      }
    }
  }
  return Status::OK();
}

std::vector<Row> Executor::ReadMotionBuffer(const MotionNode& node,
                                            MotionExchange& exchange, int segment) {
  // Decoding an encoded slot is the receiving edge of the wire transfer: it
  // synthesizes a fresh row batch, so it is safe on every path below —
  // including the copy paths, where the encoded form stays for re-reads.
  // Reads after `built` never mutate the exchange.
  if (node.motion_kind() == MotionKind::kBroadcast) {
    if (exchange.encoded_broadcast) return exchange.encoded_broadcast->Decode();
    return exchange.broadcast_shared;  // every destination copies the batch
  }
  const size_t slot = static_cast<size_t>(segment);
  if (slot < exchange.encoded_buffers.size() && exchange.encoded_buffers[slot]) {
    return exchange.encoded_buffers[slot]->Decode();
  }
  if (exchange.lazily_registered) {
    // Shared Motion subtree (serial-only): this buffer may be read again.
    return exchange.buffers[slot];
  }
  // Sole reader of this slot: hand the buffer over without copying.
  return std::move(exchange.buffers[slot]);
}

Result<std::vector<Row>> Executor::ExecMotion(const MotionNode& node, int segment) {
  auto it = exchanges_.find(&node);
  if (it == exchanges_.end()) {
    // Only possible for a shared Motion subtree revisited in serial mode
    // (CollectMotions bailed out); register the exchange lazily — under
    // exchanges_mu_, because a cancel thread's SignalAbort may be iterating
    // the map concurrently.
    MPPDB_CHECK(!parallel_run_);
    auto exchange = std::make_unique<MotionExchange>();
    exchange->source_rows.resize(static_cast<size_t>(num_segments_));
    exchange->lazily_registered = true;
    std::lock_guard<std::mutex> exchanges_lock(exchanges_mu_);
    it = exchanges_.emplace(&node, std::move(exchange)).first;
  }
  MotionExchange& exchange = *it->second;

  if (!parallel_run_) {
    // Serial: the first segment to arrive plays every source's part of the
    // exchange, then all segments read their buffer.
    if (!exchange.built) {
      std::vector<std::vector<Row>> source_rows(static_cast<size_t>(num_segments_));
      for (int source = 0; source < num_segments_; ++source) {
        MPPDB_ASSIGN_OR_RETURN(source_rows[static_cast<size_t>(source)],
                               ExecNode(node.child(0), source));
        MPPDB_RETURN_IF_ERROR(CheckExec(source, "motion.send"));
        seg_stats_[static_cast<size_t>(source)].rows_moved +=
            source_rows[static_cast<size_t>(source)].size();
      }
      MPPDB_RETURN_IF_ERROR(
          BuildMotionBuffers(node, segment, std::move(source_rows), &exchange));
      exchange.built = true;
    }
    MPPDB_RETURN_IF_ERROR(CheckExec(segment, "motion.recv"));
    return ReadMotionBuffer(node, exchange, segment);
  }

  // Parallel: a worker-count-independent exchange. Arrival is a counter each
  // segment bumps when it deposits; a segment whose peers are outstanding
  // suspends (registers a continuation and unwinds) instead of blocking a
  // worker, and the last arriver builds the buffers and reschedules the
  // suspended peers.
  {
    std::unique_lock<std::mutex> lock(exchange.mu);
    if (!exchange.deposited[static_cast<size_t>(segment)]) {
      lock.unlock();
      MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
      MPPDB_RETURN_IF_ERROR(CheckExec(segment, "motion.send"));
      seg_stats_[static_cast<size_t>(segment)].rows_moved += rows.size();
      lock.lock();
      exchange.source_rows[static_cast<size_t>(segment)] = std::move(rows);
      exchange.deposited[static_cast<size_t>(segment)] = 1;
      if (++exchange.arrived == num_segments_) {
        // Last arriver builds the per-destination buffers exactly once —
        // unless the run is already doomed (a peer failed between its
        // deposit and our arrival): announce the abort instead of building
        // dead buffers.
        exchange.build_status = CheckExec(segment, nullptr);
        if (exchange.build_status.ok()) {
          exchange.build_status = BuildMotionBuffers(
              node, segment, std::move(exchange.source_rows), &exchange);
        }
        exchange.built = true;
        std::vector<int> waiters;
        waiters.swap(exchange.waiters);
        lock.unlock();
        for (int waiter : waiters) {
          scheduler_->Submit([this, waiter]() { RunSegmentTask(waiter); });
        }
      } else {
        // The abort check under the exchange lock pairs with SignalAbort's
        // drain: registering after the drain implies the flag is visible
        // here, so no waiter can strand.
        if (abort_flag_.load(std::memory_order_acquire)) return AbortedStatus();
        exchange.waiters.push_back(segment);
        return SuspendedStatus();
      }
    } else if (!exchange.built) {
      // A resumed re-walk normally finds its suspension point built; being
      // here means a stray resume (or a future multi-resume policy) raced
      // the build. Re-register — some peer has yet to arrive (or the abort
      // below fires), so a resume is guaranteed.
      if (abort_flag_.load(std::memory_order_acquire)) return AbortedStatus();
      exchange.waiters.push_back(segment);
      return SuspendedStatus();
    }
  }
  // `built` is final: the buffers/build_status are immutable from here on
  // (each segment only moves out of its own buffer slot, and the broadcast
  // batch is only copied), so lock-free concurrent reads are safe.
  if (!exchange.build_status.ok()) return exchange.build_status;
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, "motion.recv"));
  return ReadMotionBuffer(node, exchange, segment);
}

Result<std::vector<Row>> Executor::ExecInsert(const InsertNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  // Last liveness check before mutating storage: a cancelled or expired
  // query aborts here with storage untouched, never mid-apply.
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
  {
    // Single-writer DML rule: input is gathered, so only segment 0 carries
    // rows; the lock is defense in depth against plans that violate that.
    std::lock_guard<std::mutex> lock(dml_mu_);
    for (const Row& row : rows) {
      MPPDB_RETURN_IF_ERROR(store->Insert(row));
    }
  }
  if (segment != 0) return std::vector<Row>{};
  return std::vector<Row>{{Datum::Int64(static_cast<int64_t>(rows.size()))}};
}

namespace {

struct RowLocator {
  Oid unit;
  int segment;
  size_t index;
};

Result<RowLocator> ExtractLocator(const Row& row, const std::vector<int>& rowid_pos) {
  RowLocator loc;
  loc.unit = static_cast<Oid>(row[static_cast<size_t>(rowid_pos[0])].AsInt64());
  loc.segment = static_cast<int>(row[static_cast<size_t>(rowid_pos[1])].AsInt64());
  loc.index = static_cast<size_t>(row[static_cast<size_t>(rowid_pos[2])].AsInt64());
  return loc;
}

// Deletes the located rows from storage; descending index order per unit
// vector keeps earlier indices valid.
void ApplyDeletes(TableStore* store, std::vector<RowLocator> locators) {
  std::sort(locators.begin(), locators.end(),
            [](const RowLocator& a, const RowLocator& b) {
              if (a.unit != b.unit) return a.unit < b.unit;
              if (a.segment != b.segment) return a.segment < b.segment;
              return a.index > b.index;
            });
  for (const RowLocator& loc : locators) {
    std::vector<Row>* rows = store->MutableUnitRows(loc.unit, loc.segment);
    MPPDB_CHECK(loc.index < rows->size());
    rows->erase(rows->begin() + static_cast<std::ptrdiff_t>(loc.index));
  }
}

}  // namespace

Result<std::vector<Row>> Executor::ExecUpdate(const UpdateNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  if (rows.empty()) {
    if (segment != 0) return std::vector<Row>{};
    return std::vector<Row>{{Datum::Int64(0)}};
  }
  TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> rowid_pos,
                         ResolvePositions(layout, node.rowid_ids()));
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> table_pos,
                         ResolvePositions(layout, node.table_column_ids()));

  std::vector<RowLocator> to_delete;
  std::vector<Row> to_insert;
  // A target row may join multiple source rows; SQL UPDATE applies one of
  // the matches (we keep the first), never several.
  std::set<std::tuple<Oid, int, size_t>> seen_locators;
  for (const Row& row : rows) {
    MPPDB_ASSIGN_OR_RETURN(RowLocator loc, ExtractLocator(row, rowid_pos));
    if (!seen_locators.insert({loc.unit, loc.segment, loc.index}).second) continue;
    to_delete.push_back(loc);
    Row updated;
    updated.reserve(table_pos.size());
    for (int pos : table_pos) updated.push_back(row[static_cast<size_t>(pos)]);
    for (const UpdateSetItem& item : node.set_items()) {
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(item.value, layout, row));
      updated[static_cast<size_t>(item.column_index)] = std::move(v);
    }
    to_insert.push_back(std::move(updated));
  }
  // Storage-untouched-on-cancel guarantee (see ExecInsert).
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
  {
    // Single-writer DML rule (see ExecInsert).
    std::lock_guard<std::mutex> lock(dml_mu_);
    // Delete-then-reinsert handles partition-key changes via f_T routing.
    ApplyDeletes(store, std::move(to_delete));
    for (const Row& row : to_insert) {
      MPPDB_RETURN_IF_ERROR(store->Insert(row));
    }
  }
  if (segment != 0) return std::vector<Row>{};
  return std::vector<Row>{{Datum::Int64(static_cast<int64_t>(rows.size()))}};
}

Result<std::vector<Row>> Executor::ExecDelete(const DeleteNode& node, int segment) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecNode(node.child(0), segment));
  if (rows.empty()) {
    if (segment != 0) return std::vector<Row>{};
    return std::vector<Row>{{Datum::Int64(0)}};
  }
  TableStore* store = storage_->GetStore(node.table_oid());
  if (store == nullptr) {
    return Status::ExecutionError("no storage for table oid " +
                                  std::to_string(node.table_oid()));
  }
  ColumnLayout layout = node.child(0)->OutputLayout();
  MPPDB_ASSIGN_OR_RETURN(std::vector<int> rowid_pos,
                         ResolvePositions(layout, node.rowid_ids()));
  std::vector<RowLocator> to_delete;
  std::set<std::tuple<Oid, int, size_t>> seen_locators;
  for (const Row& row : rows) {
    MPPDB_ASSIGN_OR_RETURN(RowLocator loc, ExtractLocator(row, rowid_pos));
    if (!seen_locators.insert({loc.unit, loc.segment, loc.index}).second) continue;
    to_delete.push_back(loc);
  }
  // Storage-untouched-on-cancel guarantee (see ExecInsert).
  MPPDB_RETURN_IF_ERROR(CheckExec(segment, nullptr));
  {
    // Single-writer DML rule (see ExecInsert).
    std::lock_guard<std::mutex> lock(dml_mu_);
    ApplyDeletes(store, std::move(to_delete));
  }
  if (segment != 0) return std::vector<Row>{};
  return std::vector<Row>{{Datum::Int64(static_cast<int64_t>(rows.size()))}};
}

}  // namespace mppdb
