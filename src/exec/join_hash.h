#ifndef MPPDB_EXEC_JOIN_HASH_H_
#define MPPDB_EXEC_JOIN_HASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/eval.h"
#include "types/row.h"

namespace mppdb {

/// Folds one datum into a running 64-bit join-key hash (FNV offset basis +
/// boost-style combine). Both the row-at-a-time JoinKey hashing and the
/// vectorized per-row key-hash precompute use this exact formula, so the two
/// paths place identical hash codes into their hash tables — a prerequisite
/// for bit-identical equal-range iteration order between the paths.
inline uint64_t CombineKeyHash(uint64_t h, const Datum& value) {
  return h ^ (value.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

inline constexpr uint64_t kKeyHashSeed = 0xcbf29ce484222325ull;

/// Hash-map key over a subset of row columns (hash join build keys, group-by
/// keys). Owns copies of the key datums.
struct JoinKey {
  std::vector<Datum> values;

  bool HasNull() const {
    for (const auto& v : values) {
      if (v.is_null()) return true;
    }
    return false;
  }

  bool operator==(const JoinKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (Datum::Compare(values[i], other.values[i]) != 0) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& key) const {
    uint64_t h = kKeyHashSeed;
    for (const auto& v : key.values) h = CombineKeyHash(h, v);
    return static_cast<size_t>(h);
  }
};

inline JoinKey ExtractKey(const Row& row, const std::vector<int>& positions) {
  JoinKey key;
  key.values.reserve(positions.size());
  for (int pos : positions) key.values.push_back(row[static_cast<size_t>(pos)]);
  return key;
}

inline Result<std::vector<int>> ResolvePositions(const ColumnLayout& layout,
                                                 const std::vector<ColRefId>& ids) {
  std::vector<int> positions;
  positions.reserve(ids.size());
  for (ColRefId id : ids) {
    int pos = layout.PositionOf(id);
    if (pos < 0) {
      return Status::ExecutionError("column #" + std::to_string(id) +
                                    " not found in child layout");
    }
    positions.push_back(pos);
  }
  return positions;
}

/// A join/group key viewed in place inside a materialized row, with its hash
/// precomputed by a vectorized pass. Unlike JoinKey, no datums are copied:
/// equality first compares the cached hashes (rejecting almost all bucket
/// collisions with one integer compare) and only then falls back to
/// positional datum comparison. Because Datum::Hash is equal for Equals()
/// datums, the hash shortcut never changes an equality verdict — so a hash
/// table keyed by RowKeyRef sees the same hash codes and the same equality
/// truth values as one keyed by JoinKey, and (given the same reserve and
/// insertion sequence) lays out its buckets identically.
struct RowKeyRef {
  uint64_t hash = 0;
  const Row* row = nullptr;
  const std::vector<int>* positions = nullptr;
};

struct RowKeyRefHash {
  size_t operator()(const RowKeyRef& key) const {
    return static_cast<size_t>(key.hash);
  }
};

struct RowKeyRefEq {
  bool operator()(const RowKeyRef& a, const RowKeyRef& b) const {
    if (a.hash != b.hash) return false;
    for (size_t i = 0; i < a.positions->size(); ++i) {
      const Datum& av = (*a.row)[static_cast<size_t>((*a.positions)[i])];
      const Datum& bv = (*b.row)[static_cast<size_t>((*b.positions)[i])];
      if (Datum::Compare(av, bv) != 0) return false;
    }
    return true;
  }
};

/// Vectorized key-hash pass: computes the CombineKeyHash of `positions` for
/// every row, plus a has-null flag (NULL keys never join). One tight loop, no
/// per-row datum copies.
void HashRowKeys(const std::vector<Row>& rows, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes, std::vector<uint8_t>* has_null);

}  // namespace mppdb

#endif  // MPPDB_EXEC_JOIN_HASH_H_
